// Exposition tests (src/obs/exposition.hpp): Prometheus/OpenMetrics text
// rendering, the JSON snapshot, and the file/flusher plumbing.
//
// The format contracts that matter to scrapers:
//   * label values escape backslash/quote/newline,
//   * +Inf/-Inf/NaN render as Prometheus literals (unlike JSON),
//   * histogram _bucket samples are CUMULATIVE and end at le="+Inf",
//     with _count == the +Inf bucket,
//   * every family has exactly ONE # TYPE line even when the snapshot
//     interleaves families (registration order does), and
//   * the text ends with the "# EOF" terminator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace smg {
namespace {

using obs::JsonValue;
using obs::MetricSnapshot;
using obs::MetricsSnapshot;
using obs::MetricType;

MetricSnapshot counter_snap(std::string name, double value,
                            obs::MetricLabels labels = {}) {
  MetricSnapshot m;
  m.name = std::move(name);
  m.help = "help text";
  m.type = MetricType::Counter;
  m.labels = std::move(labels);
  m.value = value;
  return m;
}

MetricSnapshot gauge_snap(std::string name, double value) {
  MetricSnapshot m = counter_snap(std::move(name), value);
  m.type = MetricType::Gauge;
  return m;
}

MetricSnapshot histogram_snap(std::string name, obs::MetricLabels labels) {
  MetricSnapshot m;
  m.name = std::move(name);
  m.help = "help text";
  m.type = MetricType::Histogram;
  m.labels = std::move(labels);
  m.le = {0.001, 0.002, 0.004};
  m.buckets = {10, 6, 1, 2};  // non-cumulative, +Inf last
  m.count = 19;
  m.sum = 0.05;
  m.p50 = 0.001;
  m.p90 = 0.003;
  m.p99 = 0.006;
  return m;
}

/// All lines of `text` starting with `prefix`.
std::vector<std::string> lines_with(const std::string& text,
                                    const std::string& prefix) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      out.push_back(line);
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(OpenMetricsEscape, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(obs::openmetrics_escape_label("plain"), "plain");
  EXPECT_EQ(obs::openmetrics_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::openmetrics_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::openmetrics_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(obs::openmetrics_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(ToOpenMetrics, RendersCounterGaugeWithLabelsAndTerminator) {
  MetricsSnapshot snap;
  snap.enabled = true;
  snap.series.push_back(counter_snap("smg_test_total", 17.0,
                                     {{"solver", "cg"}, {"status", "ok"}}));
  snap.series.push_back(gauge_snap("smg_test_gauge", -2.5));
  const std::string text = obs::to_openmetrics(snap);
  EXPECT_NE(text.find("# TYPE smg_test_total counter\n"), std::string::npos);
  EXPECT_NE(
      text.find("smg_test_total{solver=\"cg\",status=\"ok\"} 17\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE smg_test_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("smg_test_gauge -2.5\n"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(ToOpenMetrics, NonFiniteValuesUsePrometheusLiterals) {
  MetricsSnapshot snap;
  snap.series.push_back(
      gauge_snap("smg_inf", std::numeric_limits<double>::infinity()));
  snap.series.push_back(
      gauge_snap("smg_ninf", -std::numeric_limits<double>::infinity()));
  snap.series.push_back(gauge_snap("smg_nan", std::nan("")));
  const std::string text = obs::to_openmetrics(snap);
  EXPECT_NE(text.find("smg_inf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("smg_ninf -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("smg_nan NaN\n"), std::string::npos);
}

TEST(ToOpenMetrics, HistogramBucketsAreCumulativeWithInfAndCount) {
  MetricsSnapshot snap;
  snap.series.push_back(histogram_snap("smg_lat_seconds", {{"solver", "cg"}}));
  const std::string text = obs::to_openmetrics(snap);
  EXPECT_NE(text.find("# TYPE smg_lat_seconds histogram\n"),
            std::string::npos);
  // Cumulative: 10, 16, 17, 19 — not the raw per-bucket counts.
  EXPECT_NE(
      text.find("smg_lat_seconds_bucket{solver=\"cg\",le=\"0.001\"} 10\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("smg_lat_seconds_bucket{solver=\"cg\",le=\"0.002\"} 16\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("smg_lat_seconds_bucket{solver=\"cg\",le=\"0.004\"} 17\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("smg_lat_seconds_bucket{solver=\"cg\",le=\"+Inf\"} 19\n"),
      std::string::npos);
  EXPECT_NE(text.find("smg_lat_seconds_count{solver=\"cg\"} 19\n"),
            std::string::npos);
  EXPECT_NE(text.find("smg_lat_seconds_sum{solver=\"cg\"} "),
            std::string::npos);
  // Companion percentile gauges are their own families.
  EXPECT_NE(text.find("# TYPE smg_lat_seconds_p50 gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("smg_lat_seconds_p99{solver=\"cg\"} "),
            std::string::npos);
}

TEST(ToOpenMetrics, InterleavedFamiliesEmitOneTypeLineEach) {
  // Registration order interleaves families (the per-solver series
  // register latency+iterations per solver); the text format requires one
  // contiguous block per family.  Regression test for the grouping pass.
  MetricsSnapshot snap;
  snap.series.push_back(counter_snap("smg_a_total", 1.0, {{"s", "cg"}}));
  snap.series.push_back(counter_snap("smg_b_total", 2.0, {{"s", "cg"}}));
  snap.series.push_back(counter_snap("smg_a_total", 3.0, {{"s", "gmres"}}));
  snap.series.push_back(
      histogram_snap("smg_h_seconds", {{"s", "cg"}}));
  snap.series.push_back(counter_snap("smg_b_total", 4.0, {{"s", "gmres"}}));
  snap.series.push_back(
      histogram_snap("smg_h_seconds", {{"s", "gmres"}}));
  const std::string text = obs::to_openmetrics(snap);

  std::vector<std::string> type_lines = lines_with(text, "# TYPE ");
  std::sort(type_lines.begin(), type_lines.end());
  for (std::size_t i = 1; i < type_lines.size(); ++i) {
    EXPECT_NE(type_lines[i], type_lines[i - 1])
        << "duplicate TYPE line: " << type_lines[i];
  }
  // Both smg_a_total samples are contiguous under one header.
  const std::size_t a1 = text.find("smg_a_total{s=\"cg\"} 1");
  const std::size_t a2 = text.find("smg_a_total{s=\"gmres\"} 3");
  const std::size_t b1 = text.find("smg_b_total{s=\"cg\"} 2");
  ASSERT_NE(a1, std::string::npos);
  ASSERT_NE(a2, std::string::npos);
  ASSERT_NE(b1, std::string::npos);
  EXPECT_LT(a1, a2);
  EXPECT_TRUE(b1 < a1 || b1 > a2) << "smg_b sample inside the smg_a block";
  // Percentile gauges grouped per suffix family, too.
  const std::size_t p50_cg = text.find("smg_h_seconds_p50{s=\"cg\"}");
  const std::size_t p50_gm = text.find("smg_h_seconds_p50{s=\"gmres\"}");
  const std::size_t p90_cg = text.find("smg_h_seconds_p90{s=\"cg\"}");
  ASSERT_NE(p50_cg, std::string::npos);
  ASSERT_NE(p50_gm, std::string::npos);
  ASSERT_NE(p90_cg, std::string::npos);
  EXPECT_LT(p50_cg, p50_gm);
  EXPECT_LT(p50_gm, p90_cg);
}

TEST(MetricsToJson, FixedKeySetAndRoundTrip) {
  MetricsSnapshot snap;
  snap.enabled = true;
  snap.series.push_back(counter_snap("smg_test_total", 17.0,
                                     {{"solver", "cg"}}));
  snap.series.push_back(histogram_snap("smg_lat_seconds", {{"solver", "cg"}}));
  const JsonValue root = obs::metrics_to_json(snap);
  const std::string text = obs::json_write(root);
  const auto parsed = obs::json_parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;

  const JsonValue* enabled = parsed->find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->as_bool());
  const JsonValue* series = parsed->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is_array());
  ASSERT_EQ(series->items().size(), 2u);

  const JsonValue& c = series->items()[0];
  EXPECT_EQ(c.find("name")->as_string(), "smg_test_total");
  EXPECT_EQ(c.find("type")->as_string(), "counter");
  EXPECT_EQ(c.find("labels")->as_string(), "solver=\"cg\"");
  EXPECT_EQ(c.find("value")->as_number(), 17.0);
  EXPECT_FALSE(c.has("buckets"));

  const JsonValue& h = series->items()[1];
  EXPECT_EQ(h.find("type")->as_string(), "histogram");
  ASSERT_TRUE(h.has("le"));
  ASSERT_TRUE(h.has("buckets"));
  EXPECT_EQ(h.find("le")->items().size(), 3u);
  EXPECT_EQ(h.find("buckets")->items().size(), 4u);
  // JSON buckets stay NON-cumulative (the text format is the cumulative
  // one); count/sum/percentiles ride along.
  EXPECT_EQ(h.find("buckets")->items()[0].as_number(), 10.0);
  EXPECT_EQ(h.find("buckets")->items()[3].as_number(), 2.0);
  EXPECT_EQ(h.find("count")->as_number(), 19.0);
  EXPECT_EQ(h.find("sum")->as_number(), 0.05);
  EXPECT_EQ(h.find("p90")->as_number(), 0.003);
  EXPECT_FALSE(h.has("value"));
}

TEST(WriteMetricsFile, WritesAtomicallyAndOverwrites) {
  const std::string path = testing::TempDir() + "smg_expo_test.prom";
  ASSERT_TRUE(obs::write_metrics_file(path, "first # EOF\n"));
  EXPECT_EQ(read_file(path), "first # EOF\n");
  ASSERT_TRUE(obs::write_metrics_file(path, "second # EOF\n"));
  EXPECT_EQ(read_file(path), "second # EOF\n");
  // The temp file does not linger.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(EmitMetricsFromEnv, WritesOnlyWhenConfiguredAndEnabled) {
  const std::string path = testing::TempDir() + "smg_expo_env.prom";
  std::remove(path.c_str());

  unsetenv("SMG_METRICS_FILE");
  obs::enable_metrics(true);
  EXPECT_FALSE(obs::emit_metrics_from_env());  // no path -> no write

  setenv("SMG_METRICS_FILE", path.c_str(), 1);
  obs::enable_metrics(false);
  EXPECT_FALSE(obs::emit_metrics_from_env());  // disabled -> no write
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good());

  obs::enable_metrics(true);
  EXPECT_TRUE(obs::emit_metrics_from_env());
  const std::string text = read_file(path);
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);
  // The core families pre-registered by enable_metrics(true) are present
  // even before any solve ran.
  EXPECT_NE(text.find("# TYPE smg_solves_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smg_hierarchy_cache_hits_total counter"),
            std::string::npos);

  unsetenv("SMG_METRICS_FILE");
  std::remove(path.c_str());
}

TEST(MetricsFlusherTest, WritesAtStartAndFinalFlushOnStop) {
  obs::enable_metrics(true);
  const std::string path = testing::TempDir() + "smg_expo_flush.prom";
  std::remove(path.c_str());
  {
    // Long period: only the start-of-run and stop() flushes fire, so the
    // test is timing-independent.
    obs::MetricsFlusher flusher(path, 3600.0);
    EXPECT_EQ(flusher.path(), path);
    EXPECT_EQ(flusher.period_seconds(), 3600.0);
    // The file exists immediately (written in the constructor).
    EXPECT_NE(read_file(path).find("# EOF\n"), std::string::npos);

    obs::MetricsRegistry::global()
        .counter("smg_flush_probe_total", "h")
        .inc();
    flusher.stop();
    // stop() rescraped: the new series is in the final file.
    EXPECT_NE(read_file(path).find("smg_flush_probe_total"),
              std::string::npos);
    flusher.stop();  // idempotent
  }
  std::remove(path.c_str());
}

TEST(MetricsFlusherTest, StartFromEnvRequiresBothVariablesAndEnabled) {
  const std::string path = testing::TempDir() + "smg_expo_fenv.prom";
  std::remove(path.c_str());
  obs::enable_metrics(true);

  unsetenv("SMG_METRICS_FILE");
  unsetenv("SMG_METRICS_PERIOD");
  EXPECT_EQ(obs::MetricsFlusher::start_from_env(), nullptr);

  setenv("SMG_METRICS_FILE", path.c_str(), 1);
  EXPECT_EQ(obs::MetricsFlusher::start_from_env(), nullptr);  // no period

  setenv("SMG_METRICS_PERIOD", "bogus", 1);
  EXPECT_EQ(obs::MetricsFlusher::start_from_env(), nullptr);
  setenv("SMG_METRICS_PERIOD", "-1", 1);
  EXPECT_EQ(obs::MetricsFlusher::start_from_env(), nullptr);

  setenv("SMG_METRICS_PERIOD", "3600", 1);
  auto flusher = obs::MetricsFlusher::start_from_env();
  ASSERT_NE(flusher, nullptr);
  EXPECT_EQ(flusher->period_seconds(), 3600.0);
  flusher->stop();
  EXPECT_NE(read_file(path).find("# EOF\n"), std::string::npos);

  unsetenv("SMG_METRICS_FILE");
  unsetenv("SMG_METRICS_PERIOD");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smg
