// JSON/Chrome-trace export tests: parser unit tests plus full round-trips
// of to_json / to_chrome_trace through the in-tree parser, validating the
// "smg-telemetry-v3" schema without an external dependency.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/mg_precond.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "problems/problem.hpp"
#include "util/aligned.hpp"

namespace smg {
namespace {

// ---- parser unit tests ----------------------------------------------------

TEST(JsonParse, Scalars) {
  auto v = obs::json_parse("42.5");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_number());
  EXPECT_EQ(v->as_number(), 42.5);

  v = obs::json_parse("-1e-3");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_number(), -1e-3);

  v = obs::json_parse("true");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_bool());
  EXPECT_TRUE(v->as_bool());

  v = obs::json_parse("false");
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->as_bool());

  v = obs::json_parse("null");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_null());
}

TEST(JsonParse, StringsAndEscapes) {
  auto v = obs::json_parse("\"hello\"");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_string());
  EXPECT_EQ(v->as_string(), "hello");

  v = obs::json_parse("\"a\\\"b\\\\c\\n\\t\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\n\t");
}

TEST(JsonParse, UnicodeEscapes) {
  // BMP code points decode to UTF-8, not a '?' placeholder.
  auto v = obs::json_parse("\"\\u0041\\u00e9\\u4e2d\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9\xe4\xb8\xad");  // "Aé中"

  // \u0000 is representable (embedded NUL).
  v = obs::json_parse("\"a\\u0000b\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), std::string("a\0b", 3));

  // Surrogate pair: U+1F600 = \uD83D\uDE00 -> 4-byte UTF-8.
  v = obs::json_parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "\xf0\x9f\x98\x80");

  // Round trip through json_escape's \u output for control characters.
  v = obs::json_parse("\"" + obs::json_escape(std::string("\x01\x1f")) +
                      "\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "\x01\x1f");
}

TEST(JsonParse, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(obs::json_parse("\"\\u12\"").has_value());      // short
  EXPECT_FALSE(obs::json_parse("\"\\u12zz\"").has_value());    // non-hex
  EXPECT_FALSE(obs::json_parse("\"\\ud83d\"").has_value());    // lone high
  EXPECT_FALSE(obs::json_parse("\"\\ud83dxy\"").has_value());  // unpaired
  EXPECT_FALSE(
      obs::json_parse("\"\\ud83d\\u0041\"").has_value());  // bad low
  EXPECT_FALSE(obs::json_parse("\"\\ude00\"").has_value());  // stray low
}

TEST(JsonParse, NestedStructures) {
  const auto v =
      obs::json_parse("{\"a\":[1,2,{\"b\":true}],\"c\":{\"d\":null}}");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const obs::JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].as_number(), 1.0);
  ASSERT_TRUE(a->items()[2].is_object());
  EXPECT_TRUE(a->items()[2].find("b")->as_bool());
  ASSERT_NE(v->find("c"), nullptr);
  EXPECT_TRUE(v->find("c")->find("d")->is_null());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedAndTrailingGarbage) {
  EXPECT_FALSE(obs::json_parse("").has_value());
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  EXPECT_FALSE(obs::json_parse("{\"a\":}").has_value());
  EXPECT_FALSE(obs::json_parse("\"unterminated").has_value());
  EXPECT_FALSE(obs::json_parse("{} trailing").has_value());
  EXPECT_FALSE(obs::json_parse("123abc").has_value());
}

TEST(JsonParse, DepthCapRejectsPathological) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += "[";
  }
  for (int i = 0; i < 200; ++i) {
    deep += "]";
  }
  EXPECT_FALSE(obs::json_parse(deep).has_value());
}

TEST(JsonEscape, RoundTripsThroughParse) {
  const std::string raw = "line1\nline2\t\"quoted\"\\slash";
  const auto v = obs::json_parse("\"" + obs::json_escape(raw) + "\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), raw);
}

// ---- report / trace round-trips -------------------------------------------

struct InstrumentedSolve {
  InstrumentedSolve() {
    const Problem p = make_problem("laplace27", Box{10, 10, 10});
    MGConfig cfg = config_d16_setup_scale();
    cfg.min_coarse_cells = 64;
    cfg.telemetry = obs::TelemetryLevel::Full;
    StructMat<double> A = p.A;
    h = std::make_unique<MGHierarchy>(std::move(A), cfg);
    M = make_mg_precond<double>(*h);
    const std::size_t n = p.b.size();
    avec<double> r(n, 1.0), e(n, 0.0);
    M->apply({r.data(), n}, {e.data(), n});
    M->apply({r.data(), n}, {e.data(), n});
  }
  std::unique_ptr<MGHierarchy> h;
  std::unique_ptr<PrecondBase<double>> M;
};

TEST(ReportJson, SchemaRoundTrip) {
  InstrumentedSolve s;
  const obs::SolverReport rep =
      obs::build_report(*s.M->telemetry(), *s.h, /*reference_gbs=*/25.0);
  const std::string text = obs::to_json(rep);
  const auto doc = obs::json_parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  ASSERT_TRUE(doc->is_object());

  ASSERT_NE(doc->find("schema"), nullptr);
  EXPECT_EQ(doc->find("schema")->as_string(), "smg-telemetry-v3");
  ASSERT_NE(doc->find("precision_policy"), nullptr);
  EXPECT_EQ(doc->find("precision_policy")->as_string(), "fixed");

  const obs::JsonValue* solve = doc->find("solve");
  ASSERT_NE(solve, nullptr);
  ASSERT_TRUE(solve->is_object());
  for (const char* key :
       {"seconds", "iterations", "precond_seconds", "precond_calls"}) {
    ASSERT_NE(solve->find(key), nullptr) << key;
    EXPECT_TRUE(solve->find(key)->is_number()) << key;
  }
  EXPECT_EQ(solve->find("precond_calls")->as_number(), 2.0);
  EXPECT_GT(solve->find("precond_seconds")->as_number(), 0.0);
  EXPECT_EQ(doc->find("reference_gbs")->as_number(), 25.0);
  EXPECT_EQ(doc->find("dropped")->as_number(), 0.0);

  const obs::JsonValue* kernels = doc->find("kernels");
  ASSERT_NE(kernels, nullptr);
  ASSERT_TRUE(kernels->is_array());
  ASSERT_FALSE(kernels->items().empty());
  bool saw_symgs = false;
  for (const obs::JsonValue& k : kernels->items()) {
    ASSERT_TRUE(k.is_object());
    for (const char* key : {"level", "seconds", "calls",
                            "model_bytes_per_call", "achieved_gbs",
                            "efficiency"}) {
      ASSERT_NE(k.find(key), nullptr) << key;
      EXPECT_TRUE(k.find(key)->is_number()) << key;
    }
    ASSERT_NE(k.find("kind"), nullptr);
    EXPECT_TRUE(k.find("kind")->is_string());
    if (k.find("kind")->as_string() == "symgs") {
      saw_symgs = true;
      // 2 applies x (nu1 + nu2) sweeps on a non-coarsest level.
      EXPECT_EQ(k.find("calls")->as_number(), 4.0);
      EXPECT_GT(k.find("model_bytes_per_call")->as_number(), 0.0);
      EXPECT_GT(k.find("achieved_gbs")->as_number(), 0.0);
      EXPECT_GT(k.find("efficiency")->as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_symgs);

  const obs::JsonValue* levels = doc->find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_TRUE(levels->is_array());
  ASSERT_EQ(static_cast<int>(levels->items().size()), s.h->nlevels());
  for (const obs::JsonValue& l : levels->items()) {
    for (const char* key :
         {"level", "rows", "stored_values", "matrix_bytes", "g", "gmax",
          "headroom", "min_abs", "max_abs", "overflowed", "flushed_to_zero",
          "subnormal", "conversions_per_apply", "rescales", "promotions"}) {
      ASSERT_NE(l.find(key), nullptr) << key;
      EXPECT_TRUE(l.find(key)->is_number()) << key;
    }
    EXPECT_TRUE(l.find("storage")->is_string());
    EXPECT_TRUE(l.find("shifted")->is_bool());
    EXPECT_TRUE(l.find("scaled")->is_bool());
    EXPECT_GT(l.find("headroom")->as_number(), 1.0);
  }

  // Undecomposed run: the halo array is present but empty.
  const obs::JsonValue* halo = doc->find("halo");
  ASSERT_NE(halo, nullptr);
  ASSERT_TRUE(halo->is_array());
  EXPECT_TRUE(halo->items().empty());

  // Fixed policy: the autopilot array is present but empty.
  const obs::JsonValue* autopilot = doc->find("autopilot");
  ASSERT_NE(autopilot, nullptr);
  ASSERT_TRUE(autopilot->is_array());
  EXPECT_TRUE(autopilot->items().empty());
}

TEST(ReportJson, HaloRowsPresentWhenDecomposed) {
  const Problem p = make_problem("laplace27", Box{17, 17, 17});
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  cfg.smoother = SmootherType::Jacobi;
  cfg.decomp = {2, 2, 2};
  cfg.decomp_min_box = 32;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  M->apply({r.data(), n}, {e.data(), n});

  const obs::SolverReport rep = obs::build_report(*M->telemetry(), h);
  const auto doc = obs::json_parse(obs::to_json(rep));
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* halo = doc->find("halo");
  ASSERT_NE(halo, nullptr);
  ASSERT_TRUE(halo->is_array());
  ASSERT_FALSE(halo->items().empty());
  for (const obs::JsonValue& row : halo->items()) {
    ASSERT_TRUE(row.is_object());
    for (const char* key :
         {"level", "bytes", "exchanges", "pack_seconds", "unpack_seconds"}) {
      ASSERT_NE(row.find(key), nullptr) << key;
      EXPECT_TRUE(row.find(key)->is_number()) << key;
    }
    EXPECT_GT(row.find("bytes")->as_number(), 0.0);
    EXPECT_GT(row.find("exchanges")->as_number(), 0.0);
  }
}

TEST(ChromeTrace, SchemaRoundTrip) {
  InstrumentedSolve s;
  const std::string text = obs::to_chrome_trace(*s.M->telemetry());
  const auto doc = obs::json_parse(text);
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->items().empty());
  double prev_ts = -1.0;
  for (const obs::JsonValue& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_TRUE(e.find("name")->is_string());
    EXPECT_GE(e.find("ts")->as_number(), prev_ts);
    prev_ts = e.find("ts")->as_number();
    EXPECT_GE(e.find("dur")->as_number(), 0.0);
    EXPECT_EQ(e.find("pid")->as_number(), 0.0);
    EXPECT_TRUE(e.find("tid")->is_number());
    const obs::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("mg_level"), nullptr);
    EXPECT_GE(args->find("mg_level")->as_number(), -1.0);
    EXPECT_LT(args->find("mg_level")->as_number(), s.h->nlevels());
  }
}

TEST(ChromeTrace, EmptyBelowFull) {
  obs::Telemetry t(obs::TelemetryLevel::Counters, 2);
  const std::string text = obs::to_chrome_trace(t);
  const auto doc = obs::json_parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("traceEvents")->items().empty());
}

TEST(ReportFiles, EmitFromEnvWritesParsableFiles) {
  InstrumentedSolve s;
  const obs::SolverReport rep = obs::build_report(*s.M->telemetry(), *s.h);
  const std::string jpath = ::testing::TempDir() + "smg_report.json";
  const std::string tpath = ::testing::TempDir() + "smg_trace.json";
  setenv("SMG_TELEMETRY_JSON", jpath.c_str(), 1);
  setenv("SMG_TELEMETRY_TRACE", tpath.c_str(), 1);
  EXPECT_EQ(obs::emit_from_env(rep, *s.M->telemetry()), 2);
  unsetenv("SMG_TELEMETRY_JSON");
  unsetenv("SMG_TELEMETRY_TRACE");
  for (const std::string& path : {jpath, tpath}) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
    EXPECT_TRUE(obs::json_parse(text).has_value()) << path;
    std::remove(path.c_str());
  }
  // Unset env: nothing written.
  EXPECT_EQ(obs::emit_from_env(rep, *s.M->telemetry()), 0);
}

}  // namespace
}  // namespace smg
