// Service-metrics registry tests (src/obs/metrics.hpp).
//
// The load-bearing contracts:
//   * counters/histograms merge EXACTLY across concurrent writers (the
//     per-thread shards lose nothing),
//   * histogram percentiles land within one bucket of the true quantile,
//   * the registry dedupes (name, labels) to one stable handle,
//   * record helpers are no-ops when metrics are off,
//   * enabling metrics does not change solve results BITWISE (the
//     instrumentation is bookkeeping only), and
//   * request IDs are assigned monotonically, pinnable via SolveOptions,
//     and contiguous per column under solve_many.
//
// NOTE: the metrics switch and registry are process-global and sticky;
// tests that need the off state flip it off explicitly (allowed from
// tests) and run before asserting deltas, never absolute values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "obs/metrics.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/solve_many.hpp"

namespace smg {
namespace {

using obs::MetricsRegistry;

LinOp<double> op_of(const StructMat<double>& A) {
  return [&A](std::span<const double> x, std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
}

TEST(MetricsLevel, ParseAcceptsTheDocumentedSpellings) {
  using obs::MetricsLevel;
  using obs::parse_metrics;
  EXPECT_EQ(parse_metrics("on", MetricsLevel::Off), MetricsLevel::On);
  EXPECT_EQ(parse_metrics("ON", MetricsLevel::Off), MetricsLevel::On);
  EXPECT_EQ(parse_metrics("1", MetricsLevel::Off), MetricsLevel::On);
  EXPECT_EQ(parse_metrics("true", MetricsLevel::Off), MetricsLevel::On);
  EXPECT_EQ(parse_metrics("off", MetricsLevel::On), MetricsLevel::Off);
  EXPECT_EQ(parse_metrics("0", MetricsLevel::On), MetricsLevel::Off);
  EXPECT_EQ(parse_metrics("false", MetricsLevel::On), MetricsLevel::Off);
  // Unknown spellings keep the fallback.
  EXPECT_EQ(parse_metrics("bogus", MetricsLevel::On), MetricsLevel::On);
  EXPECT_EQ(parse_metrics("", MetricsLevel::Off), MetricsLevel::Off);
}

TEST(MetricsRegistryTest, DedupesByNameAndLabels) {
  MetricsRegistry& r = MetricsRegistry::global();
  obs::Counter& a = r.counter("test_dedupe_total", "h", {{"k", "v"}});
  obs::Counter& b = r.counter("test_dedupe_total", "h", {{"k", "v"}});
  obs::Counter& c = r.counter("test_dedupe_total", "h", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  obs::Histogram& h1 =
      r.histogram("test_dedupe_seconds", "h", obs::kLatencySpec);
  obs::Histogram& h2 =
      r.histogram("test_dedupe_seconds", "h", obs::kLatencySpec);
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, CounterMergesExactlyAcrossThreads) {
  obs::Counter& c =
      MetricsRegistry::global().counter("test_counter_mt_total", "h");
  const double before = c.value();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) {
        c.inc();
      }
    });
  }
  for (std::thread& t : ts) {
    t.join();
  }
  EXPECT_EQ(c.value() - before, static_cast<double>(kThreads * kAdds));
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  obs::Gauge& g = MetricsRegistry::global().gauge("test_gauge", "h");
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_EQ(g.value(), 5.0);
  g.set(-2.0);
  EXPECT_EQ(g.value(), -2.0);
}

TEST(HistogramTest, ExactCountsAndBucketLayout) {
  obs::Histogram h(obs::HistogramSpec{1.0, 2.0, 4});  // bounds 1,2,4,8,+Inf
  ASSERT_EQ(h.bounds().size(), 4u);
  EXPECT_EQ(h.bounds().front(), 1.0);
  EXPECT_EQ(h.bounds().back(), 8.0);
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (upper bounds are inclusive)
  h.observe(1.5);   // <= 2
  h.observe(6.0);   // <= 8
  h.observe(100.0); // +Inf overflow
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 6.0 + 100.0);
}

TEST(HistogramTest, NonFiniteObservationsLandInOverflow) {
  obs::Histogram h(obs::HistogramSpec{1.0, 2.0, 4});
  h.observe(std::nan(""));
  h.observe(std::numeric_limits<double>::infinity());
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  EXPECT_EQ(counts.back(), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(HistogramTest, QuantileWithinOneBucketOfTruth) {
  // 1000 observations uniform over (0, 1]: true q-quantile is ~q.  The
  // log-bucket estimate must land inside the same bucket as the truth,
  // i.e. within a factor of the bucket growth.
  obs::Histogram h(obs::HistogramSpec{1e-3, 2.0, 12});
  for (int i = 1; i <= 1000; ++i) {
    h.observe(static_cast<double>(i) / 1000.0);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double est = h.quantile(q);
    // The truth q lies in bucket (lo, hi]; the estimate interpolates
    // inside that bucket, so |est - q| < bucket width at q.
    EXPECT_GT(est, q / 2.0) << "q=" << q;
    EXPECT_LE(est, q * 2.0) << "q=" << q;
  }
  // Degenerate quantiles.
  EXPECT_EQ(obs::Histogram(obs::kLatencySpec).quantile(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsMergeExactly) {
  obs::Histogram h(obs::kLatencySpec);
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        // Exactly representable values so the sum check is exact.
        h.observe(t % 2 == 0 ? 0.5 : 0.25);
      }
    });
  }
  for (std::thread& t : ts) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kObs));
  EXPECT_DOUBLE_EQ(h.sum(), kObs * (4 * 0.5 + 4 * 0.25));
  std::uint64_t total = 0;
  for (const std::uint64_t c : h.bucket_counts()) {
    total += c;
  }
  EXPECT_EQ(total, h.count());
}

TEST(MetricsSwitch, RecordHelpersNoOpWhenOff) {
  obs::enable_metrics(true);  // make sure the series exist to read
  obs::Counter& solves = MetricsRegistry::global().counter(
      "smg_solves_total", "Finished solves by solver and status",
      {{"solver", "cg"}, {"status", "converged"}});
  const double before = solves.value();
  obs::enable_metrics(false);
  EXPECT_FALSE(obs::metrics_enabled());
  obs::record_solve_metrics("cg", 0.01, 5, "converged", 0);
  obs::record_cache_hit();
  obs::record_cache_miss();
  obs::record_precond_apply(0.001);
  obs::record_autopilot_event("non_finite");
  EXPECT_EQ(solves.value(), before);
  obs::enable_metrics(true);
  obs::record_solve_metrics("cg", 0.01, 5, "converged", 0);
  EXPECT_EQ(solves.value(), before + 1.0);
}

TEST(MetricsSwitch, HaloHandlesNullWhenOff) {
  obs::enable_metrics(false);
  const obs::HaloLevelMetrics off = obs::halo_level_metrics(7);
  EXPECT_EQ(off.wire_bytes, nullptr);
  EXPECT_EQ(off.model_bytes_per_exchange, nullptr);
  obs::enable_metrics(true);
  const obs::HaloLevelMetrics on = obs::halo_level_metrics(7);
  ASSERT_NE(on.wire_bytes, nullptr);
  ASSERT_NE(on.exchanges, nullptr);
  ASSERT_NE(on.pack_seconds, nullptr);
  ASSERT_NE(on.unpack_seconds, nullptr);
  ASSERT_NE(on.model_bytes_per_exchange, nullptr);
  // Same level -> same handles.
  EXPECT_EQ(obs::halo_level_metrics(7).wire_bytes, on.wire_bytes);
}

/// One small CG solve; returns the converged iterate.
std::vector<double> solve_once() {
  Problem p = make_laplace27(Box{12, 12, 12});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  std::vector<double> x(n, 0.0);
  SolveOptions opts;
  opts.rtol = 1e-10;
  const SolveResult res =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged) << res.status();
  return x;
}

TEST(MetricsBitwise, EnablingMetricsDoesNotChangeSolveResults) {
  obs::enable_metrics(false);
  const std::vector<double> x_off = solve_once();
  obs::enable_metrics(true);
  const std::vector<double> x_on = solve_once();
  ASSERT_EQ(x_off.size(), x_on.size());
  ASSERT_FALSE(x_off.empty());
  EXPECT_EQ(std::memcmp(x_off.data(), x_on.data(),
                        x_off.size() * sizeof(double)),
            0)
      << "metrics=On solve differs bitwise from metrics=Off";
}

TEST(MetricsInstrumentation, SolveRecordsLatencyAndStatusSeries) {
  obs::enable_metrics(true);
  MetricsRegistry& r = MetricsRegistry::global();
  obs::Counter& solves =
      r.counter("smg_solves_total", "Finished solves by solver and status",
                {{"solver", "cg"}, {"status", "converged"}});
  obs::Histogram& latency = r.histogram(
      "smg_solve_latency_seconds", "Per-solve wall seconds",
      obs::kLatencySpec, {{"solver", "cg"}});
  obs::Histogram& iters =
      r.histogram("smg_solve_iterations", "Iterations per solve",
                  obs::kIterationSpec, {{"solver", "cg"}});
  const double solves_before = solves.value();
  const std::uint64_t lat_before = latency.count();
  const std::uint64_t it_before = iters.count();
  (void)solve_once();
  EXPECT_EQ(solves.value(), solves_before + 1.0);
  EXPECT_EQ(latency.count(), lat_before + 1);
  EXPECT_EQ(iters.count(), it_before + 1);
  EXPECT_GT(latency.sum(), 0.0);
}

TEST(RequestIds, AcquireIsMonotoneAndContiguous) {
  const std::uint64_t a = obs::acquire_request_ids(1);
  const std::uint64_t b = obs::acquire_request_ids(5);
  const std::uint64_t c = obs::acquire_request_ids(1);
  EXPECT_GE(a, 1u);  // 0 means "unassigned" everywhere
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 5);
}

TEST(RequestIds, ScopeTagsTheThreadAndRestores) {
  EXPECT_EQ(obs::current_request(), 0u);
  {
    const obs::RequestScope outer(42);
    EXPECT_EQ(obs::current_request(), 42u);
    {
      const obs::RequestScope inner(43);
      EXPECT_EQ(obs::current_request(), 43u);
    }
    EXPECT_EQ(obs::current_request(), 42u);
  }
  EXPECT_EQ(obs::current_request(), 0u);
}

TEST(RequestIds, SolveAssignsAndPinsIds) {
  Problem p = make_laplace27(Box{10, 10, 10});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  SolveOptions opts;
  opts.rtol = 1e-8;

  std::vector<double> x(n, 0.0);
  const SolveResult r1 =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  std::fill(x.begin(), x.end(), 0.0);
  const SolveResult r2 =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_GE(r1.request_id, 1u);
  EXPECT_GT(r2.request_id, r1.request_id);  // auto IDs advance

  // An explicit ID is honored verbatim.
  opts.request_id = 9999;
  std::fill(x.begin(), x.end(), 0.0);
  const SolveResult r3 =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_EQ(r3.request_id, 9999u);
}

TEST(RequestIds, SolveManyAssignsContiguousPerColumnIds) {
  Problem p = make_laplace27(Box{10, 10, 10});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  constexpr int k = 4;
  MultiVector<double> B(static_cast<std::int64_t>(n), k);
  MultiVector<double> X(static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SolveManyOptions mopts;
  mopts.base.rtol = 1e-8;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(A), B, X, *M, mopts);
  ASSERT_EQ(many.columns.size(), static_cast<std::size_t>(k));
  const std::uint64_t first = many.columns[0].request_id;
  EXPECT_GE(first, 1u);
  for (int c = 0; c < k; ++c) {
    EXPECT_EQ(many.columns[static_cast<std::size_t>(c)].request_id,
              first + static_cast<std::uint64_t>(c));
  }

  // Batching (rhs_batch 2 -> two batches) keeps the block contiguous.
  MultiVector<double> X2(static_cast<std::int64_t>(n), k);
  mopts.rhs_batch = 2;
  const SolveManyResult batched =
      solve_many<double>(make_spmv_many_op<double>(A), B, X2, *M, mopts);
  ASSERT_EQ(batched.columns.size(), static_cast<std::size_t>(k));
  EXPECT_EQ(batched.batches, 2);
  const std::uint64_t bfirst = batched.columns[0].request_id;
  for (int c = 0; c < k; ++c) {
    EXPECT_EQ(batched.columns[static_cast<std::size_t>(c)].request_id,
              bfirst + static_cast<std::uint64_t>(c));
  }
}

}  // namespace
}  // namespace smg
