// Telemetry subsystem tests: off-mode bitwise identity, span-counter
// exactness on a hand-sized hierarchy, precision-event counters,
// deterministic reductions, and the PhaseTimer nesting guard.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "obs/counters.hpp"
#include "obs/telemetry.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smg {
namespace {

LinOp<double> op_of(const StructMat<double>& A) {
  return [&A](std::span<const double> x, std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
}

SolveResult solve_with(const Problem& p, MGConfig cfg,
                       bool deterministic = true, int max_iters = 120,
                       double rtol = 1e-8) {
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;  // keep p reusable
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = max_iters;
  opts.rtol = rtol;
  opts.deterministic_reductions = deterministic;
  return pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, *M, opts);
}

// ---- level parsing and env override ---------------------------------------

TEST(TelemetryLevel, ParsesAllSpellings) {
  using obs::TelemetryLevel;
  const TelemetryLevel fb = TelemetryLevel::Counters;
  EXPECT_EQ(obs::parse_telemetry("off", fb), TelemetryLevel::Off);
  EXPECT_EQ(obs::parse_telemetry("OFF", fb), TelemetryLevel::Off);
  EXPECT_EQ(obs::parse_telemetry("0", fb), TelemetryLevel::Off);
  EXPECT_EQ(obs::parse_telemetry("none", fb), TelemetryLevel::Off);
  EXPECT_EQ(obs::parse_telemetry("counters", fb), TelemetryLevel::Counters);
  EXPECT_EQ(obs::parse_telemetry("1", fb), TelemetryLevel::Counters);
  EXPECT_EQ(obs::parse_telemetry("full", fb), TelemetryLevel::Full);
  EXPECT_EQ(obs::parse_telemetry("Trace", fb), TelemetryLevel::Full);
  EXPECT_EQ(obs::parse_telemetry("2", fb), TelemetryLevel::Full);
  EXPECT_EQ(obs::parse_telemetry("bogus", fb), fb);
  EXPECT_EQ(obs::parse_telemetry("", fb), fb);
}

TEST(TelemetryLevel, EnvOverridesConfigured) {
  using obs::TelemetryLevel;
  unsetenv("SMG_TELEMETRY");
  EXPECT_EQ(obs::effective_level(TelemetryLevel::Off), TelemetryLevel::Off);
  EXPECT_EQ(obs::effective_level(TelemetryLevel::Full), TelemetryLevel::Full);
  setenv("SMG_TELEMETRY", "full", 1);
  EXPECT_EQ(obs::effective_level(TelemetryLevel::Off), TelemetryLevel::Full);
  setenv("SMG_TELEMETRY", "off", 1);
  EXPECT_EQ(obs::effective_level(TelemetryLevel::Full), TelemetryLevel::Off);
  setenv("SMG_TELEMETRY", "garbage", 1);
  EXPECT_EQ(obs::effective_level(TelemetryLevel::Counters),
            TelemetryLevel::Counters);
  unsetenv("SMG_TELEMETRY");
}

// ---- zero-overhead-when-off: bitwise identical histories ------------------

TEST(TelemetryOff, HistoriesBitwiseIdenticalAcrossLevels) {
  // The same solve at Off / Counters / Full must produce bitwise-identical
  // convergence histories: spans only read clocks, never touch data.
  const Problem p = make_problem("laplace27", Box{12, 12, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.telemetry = obs::TelemetryLevel::Off;
  const auto off = solve_with(p, cfg);
  cfg.telemetry = obs::TelemetryLevel::Counters;
  const auto counters = solve_with(p, cfg);
  cfg.telemetry = obs::TelemetryLevel::Full;
  const auto full = solve_with(p, cfg);
  ASSERT_TRUE(off.converged);
  EXPECT_EQ(off.iters, counters.iters);
  EXPECT_EQ(off.iters, full.iters);
  EXPECT_EQ(off.final_relres, counters.final_relres);
  EXPECT_EQ(off.final_relres, full.final_relres);
  EXPECT_EQ(off.history, counters.history);
  EXPECT_EQ(off.history, full.history);
}

TEST(TelemetryOff, ApplySecondsStillAccumulates) {
  // The always-on apply accumulator replaces the adapter's old Timer-based
  // seconds_ and must keep working at telemetry Off.
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  ASSERT_EQ(cfg.telemetry, obs::TelemetryLevel::Off);
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  ASSERT_NE(M->telemetry(), nullptr);
  EXPECT_FALSE(M->telemetry()->enabled());
  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  M->apply({r.data(), n}, {e.data(), n});
  EXPECT_GT(M->apply_seconds(), 0.0);
  EXPECT_EQ(M->telemetry()->apply_calls(), 1u);
  // Off records no spans.
  EXPECT_EQ(M->telemetry()->total(obs::Kind::SymGS).calls, 0u);
  M->reset_timing();
  EXPECT_EQ(M->apply_seconds(), 0.0);
  EXPECT_EQ(M->telemetry()->apply_calls(), 0u);
}

// ---- span-counter exactness on a hand-sized hierarchy ---------------------

TEST(TelemetrySpans, CountsExactPerVCycleApply) {
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  obs::Telemetry* t = M->telemetry();
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->enabled());

  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  const std::uint64_t applies = 3;
  for (std::uint64_t i = 0; i < applies; ++i) {
    M->apply({r.data(), n}, {e.data(), n});
  }

  const int last = h.nlevels() - 1;
  ASSERT_GE(last, 1);
  for (int l = 0; l < last; ++l) {
    // nu1 + nu2 = 2 SymGS sweeps per level visit (V-cycle: one visit).
    EXPECT_EQ(t->stat(obs::Kind::SymGS, l).calls, 2 * applies)
        << "level " << l;
    // Fused downstroke: one residual_restrict, no separate residual or
    // restrict dispatches.
    EXPECT_EQ(t->stat(obs::Kind::ResidualRestrict, l).calls, applies);
    EXPECT_EQ(t->stat(obs::Kind::Residual, l).calls, 0u);
    EXPECT_EQ(t->stat(obs::Kind::Restrict, l).calls, 0u);
    EXPECT_EQ(t->stat(obs::Kind::Prolong, l).calls, applies);
    // Each level visit is one Level span.
    EXPECT_EQ(t->stat(obs::Kind::Level, l).calls, applies);
  }
  EXPECT_EQ(t->stat(obs::Kind::CoarseSolve, last).calls, applies);
  EXPECT_EQ(t->apply_calls(), applies);
  EXPECT_EQ(t->total(obs::Kind::PrecondApply).calls, applies);
  EXPECT_EQ(t->dropped(), 0u);
  // KT=double, CT=float: residual truncation + error recovery per apply.
  EXPECT_EQ(t->vec_conversions_per_apply(), 2 * n);

  t->reset();
  EXPECT_EQ(t->total(obs::Kind::SymGS).calls, 0u);
  EXPECT_EQ(t->apply_calls(), 0u);
}

TEST(TelemetrySpans, UnfusedPathCountsResidualPlusRestrict) {
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.fused_transfers = FusedTransfers::Off;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  obs::Telemetry* t = M->telemetry();
  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  M->apply({r.data(), n}, {e.data(), n});
  for (int l = 0; l + 1 < h.nlevels(); ++l) {
    EXPECT_EQ(t->stat(obs::Kind::Residual, l).calls, 1u) << "level " << l;
    EXPECT_EQ(t->stat(obs::Kind::Restrict, l).calls, 1u) << "level " << l;
    EXPECT_EQ(t->stat(obs::Kind::ResidualRestrict, l).calls, 0u);
  }
}

TEST(TelemetrySpans, NestedKernelSpansDoNotDoubleCount) {
  // nrm2 calls dot internally; the depth guard must record exactly one
  // Blas1 span per nrm2 dispatch.
  obs::Telemetry t(obs::TelemetryLevel::Counters, 1);
  const obs::InstallGuard guard(&t);
  avec<double> v(100, 1.0);
  (void)nrm2<double>({v.data(), v.size()});
  EXPECT_EQ(t.total(obs::Kind::Blas1).calls, 1u);
  (void)dot<double>({v.data(), v.size()}, {v.data(), v.size()});
  EXPECT_EQ(t.total(obs::Kind::Blas1).calls, 2u);
}

TEST(TelemetrySpans, SolverSpansJoinPrecondLedger) {
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 50;
  opts.rtol = 1e-8;
  const auto res =
      pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  ASSERT_TRUE(res.converged);
  obs::Telemetry* t = M->telemetry();
  EXPECT_EQ(t->total(obs::Kind::Solve).calls, 1u);
  EXPECT_EQ(t->total(obs::Kind::Iteration).calls,
            static_cast<std::uint64_t>(res.iters));
  // Solver-side SpMV lands in the level "-1" bucket.
  EXPECT_GT(t->stat(obs::Kind::SpMV, -1).calls, 0u);
  EXPECT_GT(t->total(obs::Kind::Blas1).calls, 0u);
  EXPECT_EQ(t->apply_seconds(), res.precond_seconds);
}

TEST(TelemetryTrace, FullRecordsSortedEvents) {
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.telemetry = obs::TelemetryLevel::Full;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  M->apply({r.data(), n}, {e.data(), n});
  const auto events = M->telemetry()->trace_events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t0, events[i].t0);
  }
  for (const auto& ev : events) {
    EXPECT_LE(ev.t0, ev.t1);
    EXPECT_GE(ev.level, -1);
    EXPECT_LT(ev.level, h.nlevels());
  }
}

// ---- precision-event counters ---------------------------------------------

TEST(PrecisionCounters, InRangeProblemHasHeadroomAndNoFlushes) {
  // laplace27 and oil: the counters must state positive overflow headroom
  // and zero overflow events on every level.
  for (const char* name : {"laplace27", "oil"}) {
    const Problem p = make_problem(name, Box{10, 10, 10});
    MGConfig cfg = config_d16_setup_scale();
    cfg.min_coarse_cells = 64;
    StructMat<double> A = p.A;
    MGHierarchy h(std::move(A), cfg);
    const auto counters = obs::collect_precision_counters(h);
    ASSERT_EQ(static_cast<int>(counters.size()), h.nlevels());
    for (const auto& c : counters) {
      EXPECT_GT(c.headroom, 1.0) << name << " level " << c.level;
      EXPECT_EQ(c.overflowed, 0u) << name << " level " << c.level;
      EXPECT_GT(c.max_abs, 0.0);
      EXPECT_GT(c.min_abs, 0.0);
      EXPECT_LE(c.min_abs, c.max_abs);
      if (std::string(name) == "laplace27") {
        // Uniform stencil: nothing flushes to zero anywhere.
        EXPECT_EQ(c.flushed_to_zero, 0u) << "level " << c.level;
      }
    }
  }
}

TEST(PrecisionCounters, ShiftLevidEliminatesCoarseFlushes) {
  // oil's Galerkin chain produces coarse-level entries tiny enough to flush
  // to zero in FP16 — the exact failure mode §4.3's shift_levid escapes.
  // The counters must make both halves of that story visible.
  const Problem p = make_problem("oil", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  StructMat<double> A0 = p.A;
  MGHierarchy h0(std::move(A0), cfg);
  std::uint64_t coarse_flushed = 0;
  for (const auto& c : obs::collect_precision_counters(h0)) {
    if (c.level >= 1) {
      coarse_flushed += c.flushed_to_zero;
    }
  }
  ASSERT_GT(coarse_flushed, 0u)
      << "expected oil's coarse levels to flush in FP16";

  cfg.shift_levid = 1;  // store levels >= 1 in compute precision
  StructMat<double> A1 = p.A;
  MGHierarchy h1(std::move(A1), cfg);
  for (const auto& c : obs::collect_precision_counters(h1)) {
    if (c.level >= 1) {
      EXPECT_TRUE(c.shifted);
      EXPECT_EQ(c.flushed_to_zero, 0u) << "level " << c.level;
    }
  }
}

TEST(PrecisionCounters, SetupScaleHeadroomIsInverseSafety) {
  // When a level is scaled, G = safety * G_max, so headroom = G_max / G
  // must equal 1/safety (= 4 at the default 0.25).
  const Problem p = make_problem("laplace27e8", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  const auto counters = obs::collect_precision_counters(h);
  bool any_scaled = false;
  for (const auto& c : counters) {
    if (c.scaled) {
      any_scaled = true;
      EXPECT_NEAR(c.headroom, 1.0 / cfg.scale_safety, 1e-9)
          << "level " << c.level;
      EXPECT_GT(c.g, 0.0);
      EXPECT_GT(c.gmax, c.g);
      EXPECT_EQ(c.overflowed, 0u);
    }
  }
  EXPECT_TRUE(any_scaled);
}

TEST(PrecisionCounters, ForcedOverflowIsCounted) {
  // laplace27e8 without scaling: values far above FP16_MAX must show up as
  // nonzero overflow counts (the Fig. 6 "none" failure mode, observable).
  const Problem p = make_problem("laplace27e8", Box{10, 10, 10});
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  const auto counters = obs::collect_precision_counters(h);
  std::uint64_t total_overflow = 0;
  for (const auto& c : counters) {
    total_overflow += c.overflowed;
    EXPECT_FALSE(c.scaled);
  }
  EXPECT_GT(total_overflow, 0u);
}

TEST(PrecisionCounters, ForcedUnderflowIsCounted) {
  // Shrink laplace27 to ~1e-10 magnitudes: below FP16's smallest subnormal
  // (~6e-8) every nonzero entry flushes to zero.
  Problem p = make_problem("laplace27", Box{8, 8, 8});
  for (auto& v : p.A.values()) {
    v *= 1e-10;
  }
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  const auto counters = obs::collect_precision_counters(h);
  std::uint64_t flushed = 0;
  for (const auto& c : counters) {
    flushed += c.flushed_to_zero;
  }
  EXPECT_GT(flushed, 0u);
}

TEST(PrecisionCounters, SubnormalRangeIsCounted) {
  // ~1e-6 magnitudes land between FP16's smallest subnormal (~6e-8) and
  // smallest normal (~6.1e-5).
  Problem p = make_problem("laplace27", Box{8, 8, 8});
  for (auto& v : p.A.values()) {
    v *= 1e-6;
  }
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  const auto counters = obs::collect_precision_counters(h);
  std::uint64_t subnormal = 0;
  for (const auto& c : counters) {
    subnormal += c.subnormal;
  }
  EXPECT_GT(subnormal, 0u);
}

TEST(PrecisionCounters, ConversionCountsAreAnalytic) {
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();  // nu1 = nu2 = 1
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  const auto counters = obs::collect_precision_counters(h);
  for (const auto& c : counters) {
    const bool coarsest = c.level + 1 == h.nlevels();
    const Level& lev = h.level(c.level);
    const std::uint64_t slots =
        static_cast<std::uint64_t>(lev.A_full.ncells()) *
        static_cast<std::uint64_t>(lev.A_full.ndiag()) *
        static_cast<std::uint64_t>(lev.A_full.block_size()) *
        static_cast<std::uint64_t>(lev.A_full.block_size());
    EXPECT_EQ(c.stored_values, slots) << "level " << c.level;
    if (bytes_of(lev.storage) == 2 && !coarsest) {
      // nu1 + nu2 smoothing passes + 1 downstroke residual pass.
      EXPECT_EQ(c.conversions_per_apply, 3 * slots) << "level " << c.level;
    } else {
      EXPECT_EQ(c.conversions_per_apply, 0u) << "level " << c.level;
    }
  }
}

TEST(PrecisionCounters, WCycleMultipliesConversionsByVisits) {
  const Problem p = make_problem("laplace27", Box{12, 12, 10});
  MGConfig v_cfg = config_d16_setup_scale();
  v_cfg.min_coarse_cells = 64;
  MGConfig w_cfg = v_cfg;
  w_cfg.cycle = CycleType::W;
  StructMat<double> Av = p.A;
  MGHierarchy hv(std::move(Av), v_cfg);
  StructMat<double> Aw = p.A;
  MGHierarchy hw(std::move(Aw), w_cfg);
  ASSERT_EQ(hv.nlevels(), hw.nlevels());
  const auto cv = obs::collect_precision_counters(hv);
  const auto cw = obs::collect_precision_counters(hw);
  // Level l is visited 2^l times per W-cycle apply (while it still has a
  // coarser level below it to recurse into twice).
  std::uint64_t visits = 1;
  for (int l = 0; l < hv.nlevels(); ++l) {
    EXPECT_EQ(cw[l].conversions_per_apply,
              visits * cv[l].conversions_per_apply)
        << "level " << l;
    if (w_cfg.cycle == CycleType::W && l + 2 < hv.nlevels()) {
      visits *= 2;
    }
  }
}

TEST(PrecisionCounters, ShiftLevidIsReflected) {
  const Problem p = make_problem("laplace27", Box{10, 10, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.shift_levid = 1;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  const auto counters = obs::collect_precision_counters(h);
  for (const auto& c : counters) {
    if (c.level >= 1) {
      EXPECT_TRUE(c.shifted) << "level " << c.level;
      EXPECT_EQ(c.storage, cfg.compute);
      EXPECT_EQ(c.conversions_per_apply, 0u);  // 4-byte storage
    } else {
      EXPECT_FALSE(c.shifted);
      EXPECT_EQ(c.storage, Prec::FP16);
    }
  }
}

// ---- deterministic reductions ---------------------------------------------

TEST(DeterministicDot, InvariantAcrossThreadCounts) {
  const std::size_t n = 40000;
  avec<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Spread magnitudes and signs so summation order matters for the plain
    // OpenMP reduction.
    x[i] = (static_cast<double>(i % 7) + 1.0) * 1e-3 *
           ((i % 2 == 0) ? 1.0 : -1.0) * (1.0 + static_cast<double>(i % 97));
    y[i] = 1.0 / (1.0 + static_cast<double>(i % 31));
  }
  const std::span<const double> xs{x.data(), n};
  const std::span<const double> ys{y.data(), n};
#if defined(_OPENMP)
  const int save = omp_get_max_threads();
  omp_set_num_threads(1);
  const double d1 = dot_deterministic(xs, ys);
  omp_set_num_threads(2);
  const double d2 = dot_deterministic(xs, ys);
  omp_set_num_threads(4);
  const double d4 = dot_deterministic(xs, ys);
  omp_set_num_threads(save);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
#else
  const double d1 = dot_deterministic(xs, ys);
#endif
  // Agrees with the plain reduction to rounding.
  const double ref = dot(xs, ys);
  EXPECT_NEAR(d1, ref, 1e-9 * (std::abs(ref) + 1.0));
  EXPECT_EQ(nrm2_deterministic(xs), std::sqrt(dot_deterministic(xs, xs)));
}

TEST(DeterministicDot, SmallVectorsAndEmpty) {
  avec<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(dot_deterministic<double>({x.data(), 3}, {x.data(), 3}), 14.0);
  EXPECT_EQ(dot_deterministic<double>({x.data(), 0}, {x.data(), 0}), 0.0);
}

TEST(DeterministicDot, SolverHistoriesReproducible) {
  // Two runs of the same multi-threaded solve with deterministic reductions
  // produce bitwise-identical histories.
  const Problem p = make_problem("laplace27", Box{12, 12, 10});
  const MGConfig cfg = config_d16_setup_scale();
  const auto a = solve_with(p, cfg, /*deterministic=*/true);
  const auto b = solve_with(p, cfg, /*deterministic=*/true);
  ASSERT_TRUE(a.converged);
  EXPECT_EQ(a.iters, b.iters);
  EXPECT_EQ(a.final_relres, b.final_relres);
  EXPECT_EQ(a.history, b.history);
}

// ---- PhaseTimer nesting guard ---------------------------------------------

TEST(PhaseTimerDeathTest, ReentrantStartAborts) {
  PhaseTimer t;
  t.start();
  EXPECT_DEATH(t.start(), "already running");
}

TEST(PhaseTimerDeathTest, StopWithoutStartAborts) {
  PhaseTimer t;
  EXPECT_DEATH(t.stop(), "without a matching start");
}

TEST(PhaseTimer, NormalPairingStillWorks) {
  PhaseTimer t;
  EXPECT_FALSE(t.running());
  t.start();
  EXPECT_TRUE(t.running());
  t.stop();
  EXPECT_FALSE(t.running());
  EXPECT_GE(t.total(), 0.0);
  t.clear();
  EXPECT_EQ(t.total(), 0.0);
}

}  // namespace
}  // namespace smg
