// MultiVector panel container: padding geometry, cache-line alignment,
// zero-initialisation, and column extract/insert round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/multivector.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

TEST(MultiVector, PaddedColsIsNextPowerOfTwo) {
  for (int k = 1; k <= 64; ++k) {
    const int p = detail::panel_padded_cols(k);
    EXPECT_GE(p, k);
    EXPECT_EQ(p & (p - 1), 0) << "k=" << k;   // power of two
    EXPECT_LT(p / 2, k) << "k=" << k;         // minimal such power
  }
}

template <class T>
void check_alignment(std::int64_t rows, int k) {
  MultiVector<T> mv(rows, k);
  const auto base = reinterpret_cast<std::uintptr_t>(mv.data());
  ASSERT_EQ(base % MultiVector<T>::kAlign, 0u)
      << "base not 64B-aligned, k=" << k;
  const std::size_t rowbytes =
      static_cast<std::size_t>(mv.padded_cols()) * sizeof(T);
  // The contract the panel kernels rely on: a row run of <= 64 bytes never
  // splits a cache line; longer runs start exactly on a line boundary.
  for (std::int64_t r = 0; r < rows; r += (rows / 7) + 1) {
    const auto p = reinterpret_cast<std::uintptr_t>(mv.row(r));
    if (rowbytes <= 64) {
      EXPECT_LE(p % 64 + rowbytes, 64u) << "row " << r << " splits a line";
    } else {
      EXPECT_EQ(p % 64, 0u) << "row " << r << " not line-aligned";
    }
  }
}

TEST(MultiVector, RowsNeverSplitCacheLines) {
  for (int k : {1, 2, 3, 4, 5, 8, 9, 16}) {
    check_alignment<double>(1000, k);
    check_alignment<float>(1000, k);
  }
}

TEST(MultiVector, ResizeZeroFillsIncludingPadding) {
  MultiVector<double> mv(100, 3);
  EXPECT_EQ(mv.rows(), 100);
  EXPECT_EQ(mv.cols(), 3);
  EXPECT_EQ(mv.padded_cols(), 4);
  EXPECT_EQ(mv.size(), 400u);
  for (std::int64_t r = 0; r < mv.rows(); ++r) {
    for (int c = 0; c < mv.padded_cols(); ++c) {
      const double v = mv.data()[r * mv.padded_cols() + c];
      EXPECT_EQ(v, 0.0);
      EXPECT_FALSE(std::signbit(v));
    }
  }
  // Dirty it, then resize: everything must be zero again.
  mv.fill(7.5);
  mv.resize(60, 5);
  EXPECT_EQ(mv.padded_cols(), 8);
  for (std::size_t i = 0; i < mv.size(); ++i) {
    EXPECT_EQ(mv.data()[i], 0.0);
  }
}

TEST(MultiVector, ExtractInsertRoundTrip) {
  const std::int64_t n = 257;  // odd: no accidental alignment help
  const int k = 5;
  MultiVector<float> mv(n, k);
  Rng rng(7);
  std::vector<std::vector<float>> cols(k);
  for (int c = 0; c < k; ++c) {
    cols[c].resize(static_cast<std::size_t>(n));
    for (auto& v : cols[c]) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    mv.insert_col(c, {cols[c].data(), cols[c].size()});
  }
  std::vector<float> out(static_cast<std::size_t>(n));
  for (int c = 0; c < k; ++c) {
    mv.extract_col(c, {out.data(), out.size()});
    EXPECT_EQ(0, std::memcmp(out.data(), cols[c].data(),
                             out.size() * sizeof(float)))
        << "c=" << c;
  }
  // Inserting real columns must not disturb the zero padding columns.
  for (std::int64_t r = 0; r < n; ++r) {
    for (int c = k; c < mv.padded_cols(); ++c) {
      EXPECT_EQ(mv.at(r, c), 0.0f);
    }
  }
  // at() agrees with the documented addressing.
  EXPECT_EQ(&mv.at(10, 2), mv.data() + 10 * mv.padded_cols() + 2);
  EXPECT_EQ(mv.row(10), mv.data() + 10 * mv.padded_cols());
}

}  // namespace
}  // namespace smg
