// Persistent worker pool: task coverage, stable task->worker mapping,
// reuse across many dispatches (the TSan job exercises these paths).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace smg {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.nthreads(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, TaskToWorkerMappingIsStable) {
  // Task t always lands on worker t % nthreads: the same OS thread must
  // service a given task id across dispatches (first-touch ownership).
  ThreadPool pool(3);
  std::mutex mu;
  std::map<int, std::thread::id> first;
  bool stable = true;
  for (int round = 0; round < 8; ++round) {
    pool.run(9, [&](int t) {
      const std::thread::id me = std::this_thread::get_id();
      std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] = first.emplace(t, me);
      if (!inserted && it->second != me) {
        stable = false;
      }
    });
  }
  EXPECT_TRUE(stable);
  // Tasks 0, 3, 6 share worker 0; 0 and 1 use different workers.
  EXPECT_EQ(first[0], first[3]);
  EXPECT_EQ(first[3], first[6]);
  EXPECT_NE(first[0], first[1]);
}

TEST(ThreadPool, HandlesFewerTasksThanWorkersAndZeroTasks) {
  ThreadPool pool(8);
  std::atomic<int> n{0};
  pool.run(3, [&](int) { n++; });
  EXPECT_EQ(n.load(), 3);
  pool.run(0, [&](int) { n++; });
  EXPECT_EQ(n.load(), 3);
}

TEST(ThreadPool, ManySmallDispatchesReuseWorkers) {
  // The decomposed engine dispatches several times per level per cycle;
  // hammer the epoch/condvar handshake.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 500; ++round) {
    pool.run(7, [&](int t) { sum += t; });
  }
  EXPECT_EQ(sum.load(), 500L * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

TEST(ThreadPool, WritesFromTasksAreVisibleAfterRun) {
  // run() is a barrier: all task effects must be visible to the caller.
  ThreadPool pool(2);
  std::vector<int> data(64, 0);
  pool.run(64, [&](int t) { data[static_cast<std::size_t>(t)] = t * t; });
  for (int t = 0; t < 64; ++t) {
    EXPECT_EQ(data[static_cast<std::size_t>(t)], t * t);
  }
}

TEST(ThreadPool, GlobalPoolIsSingletonAndUsable) {
  ThreadPool& g1 = ThreadPool::global();
  ThreadPool& g2 = ThreadPool::global();
  EXPECT_EQ(&g1, &g2);
  EXPECT_GE(g1.nthreads(), 1);
  std::atomic<int> n{0};
  g1.run(5, [&](int) { n++; });
  EXPECT_EQ(n.load(), 5);
}

}  // namespace
}  // namespace smg
