// Galerkin coarsening validated against an explicit dense R A P product.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/coarsen.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

/// Dense n_f x n_c prolongation matrix from the same parent rule the
/// transfer operators use (per dof, block size bs).
std::vector<double> dense_prolongation(const Coarsening& c, int bs) {
  const std::int64_t nf = c.fine.size() * bs;
  const std::int64_t nc = c.coarse.size() * bs;
  std::vector<double> P(static_cast<std::size_t>(nf * nc), 0.0);
  for (int k = 0; k < c.fine.nz; ++k) {
    const auto pk = detail::parents_of(k, c.coarse.nz, c.mask[2]);
    for (int j = 0; j < c.fine.ny; ++j) {
      const auto pj = detail::parents_of(j, c.coarse.ny, c.mask[1]);
      for (int i = 0; i < c.fine.nx; ++i) {
        const auto pi = detail::parents_of(i, c.coarse.nx, c.mask[0]);
        const std::int64_t frow = c.fine.idx(i, j, k);
        for (int a = 0; a < pk.count; ++a) {
          for (int b = 0; b < pj.count; ++b) {
            for (int e = 0; e < pi.count; ++e) {
              const double w = pk.w[a] * pj.w[b] * pi.w[e];
              const std::int64_t ccol =
                  c.coarse.idx(pi.idx[e], pj.idx[b], pk.idx[a]);
              for (int q = 0; q < bs; ++q) {
                P[static_cast<std::size_t>((frow * bs + q) * nc + ccol * bs +
                                           q)] += w;
              }
            }
          }
        }
      }
    }
  }
  return P;
}

std::vector<double> dense_of(const StructMat<double>& A) {
  const std::int64_t n = A.nrows();
  std::vector<double> D(static_cast<std::size_t>(n * n), 0.0);
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
          for (int br = 0; br < bs; ++br) {
            for (int bc = 0; bc < bs; ++bc) {
              D[static_cast<std::size_t>((cell * bs + br) * n + nbr * bs +
                                         bc)] = A.at(cell, d, br, bc);
            }
          }
        }
      }
    }
  }
  return D;
}

StructMat<double> random_matrix(const Box& box, Pattern p, int bs,
                                std::uint64_t seed) {
  StructMat<double> A(box, Stencil::make(p), bs, Layout::SOA);
  Rng rng(seed);
  for (auto& v : A.values()) {
    v = rng.uniform(-1.0, 1.0);
  }
  A.clear_out_of_box();
  return A;
}

struct CoarsenCase {
  Box fine;
  Pattern pattern;
  int bs;
};

class CoarsenParam : public ::testing::TestWithParam<CoarsenCase> {};

TEST_P(CoarsenParam, MatchesDenseTripleProduct) {
  const auto& cc = GetParam();
  auto A = random_matrix(cc.fine, cc.pattern, cc.bs, 77);
  const Coarsening c = Coarsening::make(cc.fine, 5);
  ASSERT_TRUE(c.any());
  const StructMat<double> Ac = galerkin_coarsen(A, c);
  EXPECT_EQ(Ac.stencil().ndiag(), 27);
  EXPECT_EQ(Ac.box(), c.coarse);

  const auto P = dense_prolongation(c, cc.bs);
  const auto D = dense_of(A);
  const std::int64_t nf = c.fine.size() * cc.bs;
  const std::int64_t nc = c.coarse.size() * cc.bs;

  // T = A * P  (nf x nc), then R A P = P^T T (nc x nc).
  std::vector<double> T(static_cast<std::size_t>(nf * nc), 0.0);
  for (std::int64_t r = 0; r < nf; ++r) {
    for (std::int64_t q = 0; q < nf; ++q) {
      const double a = D[static_cast<std::size_t>(r * nf + q)];
      if (a == 0.0) {
        continue;
      }
      for (std::int64_t col = 0; col < nc; ++col) {
        T[static_cast<std::size_t>(r * nc + col)] +=
            a * P[static_cast<std::size_t>(q * nc + col)];
      }
    }
  }
  std::vector<double> RAP(static_cast<std::size_t>(nc * nc), 0.0);
  const double rscale = c.restrict_scale();  // R = rscale * P^T
  for (std::int64_t q = 0; q < nf; ++q) {
    for (std::int64_t r = 0; r < nc; ++r) {
      const double p = rscale * P[static_cast<std::size_t>(q * nc + r)];
      if (p == 0.0) {
        continue;
      }
      for (std::int64_t col = 0; col < nc; ++col) {
        RAP[static_cast<std::size_t>(r * nc + col)] +=
            p * T[static_cast<std::size_t>(q * nc + col)];
      }
    }
  }

  const auto Dc = dense_of(Ac);
  for (std::int64_t r = 0; r < nc; ++r) {
    for (std::int64_t col = 0; col < nc; ++col) {
      EXPECT_NEAR(Dc[static_cast<std::size_t>(r * nc + col)],
                  RAP[static_cast<std::size_t>(r * nc + col)], 1e-11)
          << "entry (" << r << "," << col << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoarsenParam,
    ::testing::Values(CoarsenCase{Box{6, 6, 6}, Pattern::P3d7, 1},
                      CoarsenCase{Box{7, 7, 7}, Pattern::P3d7, 1},
                      CoarsenCase{Box{6, 5, 7}, Pattern::P3d19, 1},
                      CoarsenCase{Box{5, 6, 5}, Pattern::P3d27, 1},
                      CoarsenCase{Box{6, 6, 3}, Pattern::P3d7, 1},  // semi
                      CoarsenCase{Box{5, 5, 5}, Pattern::P3d7, 2},
                      CoarsenCase{Box{5, 5, 5}, Pattern::P3d15, 3}));

TEST(Coarsen, PreservesSymmetry) {
  // Galerkin with R = P^T maps symmetric A to symmetric A_c.
  auto A = random_matrix(Box{7, 6, 6}, Pattern::P3d7, 1, 31);
  // Symmetrize A first.
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!o.before_center() || !box.contains(i + o.dx, j + o.dy,
                                                  k + o.dz)) {
            continue;
          }
          const int dt = st.find(-o.dx, -o.dy, -o.dz);
          A.at(box.idx(i + o.dx, j + o.dy, k + o.dz), dt) =
              A.at(box.idx(i, j, k), d);
        }
      }
    }
  }
  const Coarsening c = Coarsening::make(box, 5);
  const auto Ac = galerkin_coarsen(A, c);
  const auto Dc = dense_of(Ac);
  const std::int64_t n = Ac.nrows();
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t cidx = 0; cidx < n; ++cidx) {
      EXPECT_NEAR(Dc[static_cast<std::size_t>(r * n + cidx)],
                  Dc[static_cast<std::size_t>(cidx * n + r)], 1e-12);
    }
  }
}

TEST(Coarsen, PoissonCoarseGridIsStillMMatrixLikeInInterior) {
  // 7-point Poisson: coarse diag positive everywhere; off-diagonals stay
  // non-positive at interior coarse cells.  (Boundary-truncated half-weight
  // interpolation can produce small positive boundary entries — a known
  // property of Galerkin operators with Dirichlet truncation, not a bug.)
  const Box box{9, 9, 9};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) = d == center ? 6.0 : -1.0;
    }
  }
  A.clear_out_of_box();
  const Coarsening c = Coarsening::make(box, 5);
  const auto Ac = galerkin_coarsen(A, c);
  const int ccenter = Ac.stencil().center();
  const Box& cb = Ac.box();
  for (int k = 0; k < cb.nz; ++k) {
    for (int j = 0; j < cb.ny; ++j) {
      for (int i = 0; i < cb.nx; ++i) {
        const std::int64_t cell = cb.idx(i, j, k);
        EXPECT_GT(Ac.at(cell, ccenter), 0.0);
        const bool interior = i > 0 && i < cb.nx - 1 && j > 0 &&
                              j < cb.ny - 1 && k > 0 && k < cb.nz - 1;
        for (int d = 0; d < Ac.ndiag(); ++d) {
          if (d == ccenter) {
            continue;
          }
          if (interior) {
            EXPECT_LE(Ac.at(cell, d), 1e-12);
          } else {
            // Boundary artifacts stay small relative to the diagonal.
            EXPECT_LE(Ac.at(cell, d), 0.05 * Ac.at(cell, ccenter));
          }
        }
      }
    }
  }
}

TEST(Coarsen, GridShrinksByRoughlyEightfold) {
  auto A = random_matrix(Box{17, 17, 17}, Pattern::P3d7, 1, 5);
  const Coarsening c = Coarsening::make(A.box(), 5);
  const auto Ac = galerkin_coarsen(A, c);
  EXPECT_EQ(Ac.box(), (Box{9, 9, 9}));
  EXPECT_LT(static_cast<double>(Ac.ncells()),
            static_cast<double>(A.ncells()) / 6.0);
}

}  // namespace
}  // namespace smg
