// Cycle-shape coverage (docs/CYCLE_SHAPES.md): the cycle_visits multiplicity
// table matches the engines' measured Level spans for V, W and F; the
// F-cycle is bitwise identical between the decomposed {2,2,2} and plain
// paths and across OpenMP thread counts; one F-cycle reaches discretization
// error on the manufactured laplace27 problem at FP64 and FP16 storage; the
// fmg_solve driver polishes, stops, restores the caller's shape.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "obs/counters.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/fmg.hpp"
#include "util/multivector.hpp"

namespace smg {
namespace {

MGConfig decomposed(MGConfig cfg, std::array<int, 3> nb) {
  cfg.min_coarse_cells = 64;
  cfg.decomp = nb;
  cfg.decomp_min_box = 32;
  return cfg;
}

// ---- visit-multiplicity table --------------------------------------------

TEST(CycleVisits, VWFTables) {
  const int n = 5;
  for (int l = 0; l < n; ++l) {
    EXPECT_EQ(cycle_visits(CycleShape::V, l, n), 1) << "V l=" << l;
  }
  // W doubles per recursion but the coarsest is NOT doubled (the recursion
  // guard stops one level above it): 1, 2, 4, 8, 8.
  EXPECT_EQ(cycle_visits(CycleShape::W, 0, n), 1);
  EXPECT_EQ(cycle_visits(CycleShape::W, 1, n), 2);
  EXPECT_EQ(cycle_visits(CycleShape::W, 2, n), 4);
  EXPECT_EQ(cycle_visits(CycleShape::W, 3, n), 8);
  EXPECT_EQ(cycle_visits(CycleShape::W, 4, n), 8);
  // F visits level l once per V sub-cycle rooted at 0..l, and the coarsest
  // once more for the bootstrap: 1, 2, 3, 4, 5 — NOT a power of two.
  EXPECT_EQ(cycle_visits(CycleShape::F, 0, n), 1);
  EXPECT_EQ(cycle_visits(CycleShape::F, 1, n), 2);
  EXPECT_EQ(cycle_visits(CycleShape::F, 2, n), 3);
  EXPECT_EQ(cycle_visits(CycleShape::F, 3, n), 4);
  EXPECT_EQ(cycle_visits(CycleShape::F, 4, n), 5);
  // Degenerate hierarchies.
  for (const CycleShape s : {CycleShape::V, CycleShape::W, CycleShape::F}) {
    EXPECT_EQ(cycle_visits(s, 0, 1), 1);
  }
}

TEST(CycleVisits, ParseAndPrint) {
  CycleShape s = CycleShape::V;
  EXPECT_TRUE(parse_cycle_shape("w", s));
  EXPECT_EQ(s, CycleShape::W);
  EXPECT_TRUE(parse_cycle_shape("V", s));
  EXPECT_EQ(s, CycleShape::V);
  EXPECT_TRUE(parse_cycle_shape("F", s));
  EXPECT_EQ(s, CycleShape::F);
  EXPECT_TRUE(parse_cycle_shape("fmg", s));
  EXPECT_EQ(s, CycleShape::F);
  EXPECT_FALSE(parse_cycle_shape("x", s));
  EXPECT_FALSE(parse_cycle_shape("", s));
  EXPECT_EQ(s, CycleShape::F) << "failed parse must not clobber";
  EXPECT_EQ(to_string(CycleShape::F), "f");
}

TEST(CycleVisits, EnvOverrideResolvesIntoHierarchyConfig) {
  auto p = make_laplace27(Box{10, 10, 10});
  ASSERT_EQ(setenv("SMG_CYCLE", "f", 1), 0);
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  unsetenv("SMG_CYCLE");
  EXPECT_EQ(h.config().cycle, CycleShape::F);
  MGPrecond<double> M(&h);
  EXPECT_EQ(M.cycle_shape(), CycleShape::F);
}

// ---- measured Level spans == cycle_visits --------------------------------

void expect_measured_visits(CycleShape shape) {
  auto p = make_laplace27(Box{14, 14, 14});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.cycle = shape;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  obs::Telemetry* t = M->telemetry();
  ASSERT_NE(t, nullptr);
  ASSERT_GE(h.nlevels(), 3) << "need a real hierarchy to distinguish shapes";
  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  M->apply({r.data(), n}, {e.data(), n});
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(t->stat(obs::Kind::Level, l).calls,
              static_cast<std::uint64_t>(
                  cycle_visits(shape, l, h.nlevels())))
        << to_string(shape) << " level " << l;
  }
}

TEST(CycleVisits, MeasuredLevelSpansMatchModelV) {
  expect_measured_visits(CycleShape::V);
}
TEST(CycleVisits, MeasuredLevelSpansMatchModelW) {
  expect_measured_visits(CycleShape::W);
}
TEST(CycleVisits, MeasuredLevelSpansMatchModelF) {
  expect_measured_visits(CycleShape::F);
}

TEST(CycleVisits, ConversionVolumeMatchesMeasuredMatrixPassesUnderF) {
  // Satellite regression: collect_precision_counters' conversions_per_apply
  // assumed power-of-two visits; under F the modeled volume must equal
  // (measured matrix-pass kernel calls) x stored_values exactly.
  auto p = make_laplace27(Box{14, 14, 14});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.cycle = CycleShape::F;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  obs::Telemetry* t = M->telemetry();
  const std::size_t n = p.b.size();
  avec<double> r(n, 1.0), e(n, 0.0);
  M->apply({r.data(), n}, {e.data(), n});
  const auto counters = obs::collect_precision_counters(h);
  ASSERT_EQ(counters.size(), static_cast<std::size_t>(h.nlevels()));
  for (int l = 0; l < h.nlevels(); ++l) {
    const auto& c = counters[static_cast<std::size_t>(l)];
    const std::uint64_t passes = t->stat(obs::Kind::SymGS, l).calls +
                                 t->stat(obs::Kind::Residual, l).calls +
                                 t->stat(obs::Kind::ResidualRestrict, l).calls;
    if (l + 1 == h.nlevels()) {
      EXPECT_EQ(c.conversions_per_apply, 0u);  // dense FP64 coarse solve
      continue;
    }
    EXPECT_EQ(c.conversions_per_apply, passes * c.stored_values)
        << "level " << l;
  }
}

// ---- F-cycle identity contracts ------------------------------------------

TEST(FCycle, BitwiseIdenticalDecomposedVsPlain) {
  for (const char* name : {"full64", "d16"}) {
    MGConfig cfg = std::string(name) == "full64" ? config_full64()
                                                 : config_d16_setup_scale();
    cfg.smoother = SmootherType::Jacobi;
    cfg.cycle = CycleShape::F;
    auto pa = make_laplace27(Box{17, 17, 17});
    auto pb = make_laplace27(Box{17, 17, 17});
    MGHierarchy ha(std::move(pa.A), decomposed(cfg, {2, 2, 2}));
    MGHierarchy hb(std::move(pb.A), decomposed(cfg, {1, 1, 1}));
    MGPrecond<double> Ma(&ha);
    MGPrecond<double> Mb(&hb);
    const std::size_t n =
        static_cast<std::size_t>(ha.level(0).A_full.nrows());
    avec<double> r(n), ea(n), eb(n);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = std::sin(0.3 * static_cast<double>(i));
    }
    Ma.apply({r.data(), n}, {ea.data(), n});
    Mb.apply({r.data(), n}, {eb.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ea[i], eb[i]) << name << " i=" << i;
    }
  }
}

TEST(FCycle, BitwiseIdenticalAcrossThreadCounts) {
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  cfg.smoother = SmootherType::Jacobi;
  cfg.cycle = CycleShape::F;
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), cfg);
  MGPrecond<double> M(&h);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  avec<double> r(n), ref(n), e(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = std::sin(0.3 * static_cast<double>(i));
  }
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  M.apply({r.data(), n}, {ref.data(), n});
  for (const int nt : {2, 4}) {
    omp_set_num_threads(nt);
    M.apply({r.data(), n}, {e.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(e[i], ref[i]) << "threads=" << nt << " i=" << i;
    }
  }
  omp_set_num_threads(saved);
}

// ---- one F-cycle reaches discretization error ----------------------------

/// ||x - u*||_2 / ||u_h - u*||_2 where u_h is the exact discrete solution:
/// the F-cycle claim is that one apply lands within a small factor of 1.
double fcycle_error_ratio(const MGConfig& base, const Box& box,
                          int max_polish = 0) {
  Problem p = make_laplace27_mms(box);
  const StructMat<double> A = p.A;
  const std::size_t n = p.b.size();
  const avec<double> ustar = laplace27_mms_solution(box);
  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };

  // Exact discrete solution at FP64, independent of the config under test.
  MGConfig ref_cfg = config_full64();
  ref_cfg.min_coarse_cells = 64;
  StructMat<double> Aref = p.A;
  MGHierarchy href(std::move(Aref), ref_cfg);
  auto Mref = make_mg_precond<double>(href);
  SolveOptions ref_opts;
  ref_opts.rtol = 1e-12;
  ref_opts.max_iters = 200;
  avec<double> uh(n, 0.0);
  const auto ref = pcg<double>(op, {p.b.data(), n}, {uh.data(), n}, *Mref,
                               ref_opts);
  EXPECT_TRUE(ref.converged);
  avec<double> diff(n);
  for (std::size_t i = 0; i < n; ++i) {
    diff[i] = uh[i] - ustar[i];
  }
  const double disc = nrm2<double>({diff.data(), n});
  EXPECT_GT(disc, 0.0);

  MGConfig cfg = base;
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  FmgOptions<double> fopts;
  fopts.max_polish = max_polish;
  fopts.rtol = 0.0;
  avec<double> x(n, 0.0);
  const auto res = fmg_solve<double>(op, {p.b.data(), n}, {x.data(), n}, *M,
                                     fopts);
  EXPECT_FALSE(res.breakdown);
  for (std::size_t i = 0; i < n; ++i) {
    diff[i] = x[i] - ustar[i];
  }
  return nrm2<double>({diff.data(), n}) / disc;
}

TEST(FCycle, OneCycleReachesDiscretizationErrorFP64) {
  const double ratio = fcycle_error_ratio(config_full64(), Box{31, 31, 31});
  EXPECT_LE(ratio, 1.5) << "one F-cycle left " << ratio
                        << "x discretization error";
}

TEST(FCycle, OneCycleReachesDiscretizationErrorFP16Storage) {
  const double ratio =
      fcycle_error_ratio(config_d16_setup_scale(), Box{31, 31, 31});
  EXPECT_LE(ratio, 1.5) << "one F-cycle at FP16 storage left " << ratio
                        << "x discretization error";
}

// ---- fmg_solve driver ----------------------------------------------------

TEST(FmgSolve, PolishConvergesAndRestoresShape) {
  Problem p = make_laplace27_mms(Box{17, 17, 17});
  const StructMat<double> A = p.A;
  const std::size_t n = p.b.size();
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  ASSERT_EQ(M->cycle_shape(), CycleShape::V);
  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
  FmgOptions<double> opts;
  opts.rtol = 1e-10;
  opts.max_polish = 30;
  avec<double> x(n, 0.0);
  const auto res = fmg_solve<double>(op, {p.b.data(), n}, {x.data(), n}, *M,
                                     opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_LT(res.final_relres, 1e-10);
  EXPECT_GT(res.polish_iters, 0);
  EXPECT_EQ(res.history.size(),
            static_cast<std::size_t>(res.polish_iters) + 1);
  EXPECT_EQ(M->cycle_shape(), CycleShape::V) << "shape not restored";
}

TEST(FmgSolve, ErrorStopEndsBeforeResidualStop) {
  const Box box{17, 17, 17};
  Problem p = make_laplace27_mms(box);
  const StructMat<double> A = p.A;
  const std::size_t n = p.b.size();
  const avec<double> ustar = laplace27_mms_solution(box);
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
  FmgOptions<double> opts;
  opts.rtol = 1e-14;  // unreachable residual target
  opts.max_polish = 30;
  opts.u_exact = {ustar.data(), n};
  // Discretization error of this grid is O(h^2) ~ 3e-3 in norm; any
  // loose absolute bound above it stops the polish almost immediately.
  opts.error_tol = 1.0;
  avec<double> x(n, 0.0);
  const auto res = fmg_solve<double>(op, {p.b.data(), n}, {x.data(), n}, *M,
                                     opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.polish_iters, 0) << "error stop should fire on bootstrap";
  EXPECT_GE(res.final_error, 0.0);
  EXPECT_LE(res.final_error, opts.error_tol);
  EXPECT_FALSE(res.error_history.empty());
}

TEST(FmgSolve, ManyRhsMatchesSingleColumnwise) {
  Problem p = make_laplace27_mms(Box{14, 14, 14});
  const StructMat<double> A = p.A;
  const std::size_t n = p.b.size();
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  cfg.smoother = SmootherType::Jacobi;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
  const int k = 3;
  MultiVector<double> B(static_cast<std::int64_t>(n), k);
  MultiVector<double> X(static_cast<std::int64_t>(n), k);
  X.fill(0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      B.at(static_cast<std::int64_t>(i), c) = p.b[i] * (1.0 + 0.5 * c);
    }
  }
  FmgOptions<double> opts;
  opts.rtol = 1e-9;
  opts.max_polish = 30;
  const auto many = fmg_solve_many<double>(op, B, X, *M, opts);
  EXPECT_TRUE(many.converged) << many.status();
  EXPECT_LT(many.final_relres, 1e-9);
  // Panel columns are bitwise identical to single-vector fmg_solve runs of
  // the same rhs when polished the same number of times (Jacobi smoother;
  // apply_many's column contract).
  avec<double> bc(n), xc(n), xs(n);
  for (int c = 0; c < k; ++c) {
    B.extract_col(c, {bc.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = 0.0;
    }
    FmgOptions<double> sopts;
    sopts.rtol = 0.0;
    sopts.max_polish = many.polish_iters;
    const auto single =
        fmg_solve<double>(op, {bc.data(), n}, {xs.data(), n}, *M, sopts);
    EXPECT_EQ(single.polish_iters, many.polish_iters);
    X.extract_col(c, {xc.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(xc[i], xs[i]) << "col " << c << " i=" << i;
    }
  }
}

TEST(FmgSolve, DiscToleranceScalesQuadratically) {
  const double t16 = fmg_disc_tolerance(Box{15, 15, 15});
  const double t32 = fmg_disc_tolerance(Box{31, 31, 31});
  EXPECT_NEAR(t16 / t32, 4.0, 1e-12);
  EXPECT_NEAR(t16, 1.0 / 256.0, 1e-15);
}

}  // namespace
}  // namespace smg
