// MG hierarchy setup tests: level structure, precision assignment,
// shift_levid, scaling decisions, complexities.
#include <gtest/gtest.h>

#include "core/mg_hierarchy.hpp"
#include "problems/problem.hpp"

namespace smg {
namespace {

MGConfig base_config() {
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  return cfg;
}

TEST(Hierarchy, BuildsMultipleLevels) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), base_config());
  EXPECT_GE(h.nlevels(), 3);
  // Levels shrink monotonically.
  for (int l = 1; l < h.nlevels(); ++l) {
    EXPECT_LT(h.level(l).A_full.ncells(), h.level(l - 1).A_full.ncells());
  }
  // Coarse levels expand to 3d27.
  for (int l = 1; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).A_full.stencil().ndiag(), 27);
  }
}

TEST(Hierarchy, ComplexitiesAreLowAsInPaper) {
  // Paper Fig. 3 / Table 3: C_G ~ 1.14, C_O ~ 1.14-1.44 for these stencils.
  auto p = make_laplace27(Box{33, 33, 33});
  MGHierarchy h(std::move(p.A), base_config());
  EXPECT_GT(h.grid_complexity(), 1.0);
  EXPECT_LT(h.grid_complexity(), 1.3);
  EXPECT_GT(h.operator_complexity(), 1.0);
  EXPECT_LT(h.operator_complexity(), 1.6);
}

TEST(Hierarchy, InRangeProblemIsNotScaled) {
  auto p = make_laplace27(Box{15, 15, 15});  // values 26 and -1: in range
  MGHierarchy h(std::move(p.A), base_config());
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_FALSE(h.level(l).scaled) << "level " << l;
    EXPECT_EQ(h.level(l).trunc.overflowed, 0u) << "level " << l;
  }
}

TEST(Hierarchy, OutOfRangeProblemIsScaledAndSafe) {
  auto p = make_laplace27e8(Box{15, 15, 15});  // 2.6e9: far out of range
  MGHierarchy h(std::move(p.A), base_config());
  EXPECT_TRUE(h.level(0).scaled);
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).trunc.overflowed, 0u)
        << "Theorem 4.1 violated on level " << l;
    if (h.level(l).scaled) {
      EXPECT_EQ(h.level(l).q2.size(),
                static_cast<std::size_t>(h.level(l).A_full.nrows()));
      EXPECT_GT(h.level(l).gmax, 0.0);
    }
  }
}

TEST(Hierarchy, NoneModeProducesOverflow) {
  auto p = make_laplace27e8(Box{15, 15, 15});
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  EXPECT_GT(h.total_truncation().overflowed, 0u);
}

TEST(Hierarchy, ScaleThenSetupWrapsFinestOnly) {
  auto p = make_laplace27e8(Box{15, 15, 15});
  MGConfig cfg = config_d16_scale_setup();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  EXPECT_TRUE(h.finest_wrapped());
  EXPECT_EQ(h.finest_q2().size(),
            static_cast<std::size_t>(h.level(0).A_full.nrows()));
  // Per-level q2 is not used in this mode.
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_FALSE(h.level(l).scaled);
  }
}

TEST(Hierarchy, StoragePrecisionFollowsShiftLevid) {
  auto p = make_laplace27(Box{33, 33, 33});
  MGConfig cfg = base_config();
  cfg.shift_levid = 2;  // levels >= 2 stored in compute precision (FP32)
  MGHierarchy h(std::move(p.A), cfg);
  ASSERT_GE(h.nlevels(), 3);
  EXPECT_EQ(h.level(0).A_stored.precision(), Prec::FP16);
  EXPECT_EQ(h.level(1).A_stored.precision(), Prec::FP16);
  for (int l = 2; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).A_stored.precision(), Prec::FP32);
  }
}

TEST(Hierarchy, ShiftLevidZeroOrNegativeStoresAllInCompute) {
  // shift_levid <= 0 means *every* level is stored in compute precision;
  // storage_at() and tag() must agree on that (the tag used to advertise a
  // D16 that never materialized).
  for (const int shift : {0, -3}) {
    auto p = make_laplace27(Box{17, 17, 17});
    MGConfig cfg = base_config();
    cfg.shift_levid = shift;
    EXPECT_EQ(cfg.tag().find("D16"), std::string::npos) << cfg.tag();
    EXPECT_NE(cfg.tag().find("D32"), std::string::npos) << cfg.tag();
    EXPECT_EQ(cfg.tag().find("shift"), std::string::npos) << cfg.tag();
    MGHierarchy h(std::move(p.A), cfg);
    for (int l = 0; l < h.nlevels(); ++l) {
      EXPECT_EQ(h.level(l).A_stored.precision(), Prec::FP32)
          << "shift=" << shift << " level " << l;
      EXPECT_EQ(cfg.storage_at(l), Prec::FP32);
    }
  }
}

TEST(Hierarchy, ShiftLevidBeyondDepthShiftsNothing) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = base_config();
  cfg.shift_levid = 99;  // deeper than any hierarchy this problem builds
  EXPECT_NE(cfg.tag().find("D16"), std::string::npos) << cfg.tag();
  MGHierarchy h(std::move(p.A), cfg);
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).A_stored.precision(), Prec::FP16) << "level " << l;
  }
}

TEST(Hierarchy, DegenerateDiagonalFallsBackToComputeStorage) {
  // One negative diagonal entry voids Theorem 4.1 (no real Q^{-1/2} exists).
  // The level must fall back to unscaled compute-precision storage instead of
  // scaling the whole matrix into NaN — under the default Fixed policy too.
  // (A negative entry rather than zero: the smoother still needs an
  // invertible diagonal block to set up at all.)
  auto p = make_laplace27e8(Box{10, 10, 10});
  p.A.at(0, p.A.stencil().center()) = -2.6e9;
  MGHierarchy h(std::move(p.A), base_config());
  EXPECT_TRUE(h.level(0).degenerate_diag);
  EXPECT_FALSE(h.level(0).scaled);
  EXPECT_EQ(h.level(0).A_stored.precision(), h.config().compute);
  EXPECT_TRUE(h.level(0).q2.empty());
  // The stored values are all finite (FP32 holds 2.6e9 comfortably).
  EXPECT_EQ(h.level(0).trunc.overflowed, 0u);
}

TEST(Hierarchy, StoredBytesShrinkWithFp16) {
  auto p1 = make_laplace27(Box{17, 17, 17});
  auto p2 = make_laplace27(Box{17, 17, 17});
  MGConfig c64 = config_full64();
  c64.min_coarse_cells = 64;
  MGHierarchy h64(std::move(p1.A), c64);
  MGHierarchy h16(std::move(p2.A), base_config());
  EXPECT_EQ(h64.stored_matrix_bytes(), 4 * h16.stored_matrix_bytes());
  EXPECT_EQ(h16.fp64_matrix_bytes(), h64.stored_matrix_bytes());
}

TEST(Hierarchy, RespectsMaxLevels) {
  auto p = make_laplace27(Box{33, 33, 33});
  MGConfig cfg = base_config();
  cfg.max_levels = 2;
  MGHierarchy h(std::move(p.A), cfg);
  EXPECT_EQ(h.nlevels(), 2);
}

TEST(Hierarchy, CoarsestSolverMatchesCoarsestLevel) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), base_config());
  EXPECT_EQ(h.coarse_solver().size(),
            h.level(h.nlevels() - 1).A_full.nrows());
  EXPECT_GT(h.coarse_solver().min_pivot(), 0.0);
}

TEST(Hierarchy, PencilGridSemicoarsens) {
  auto p = make_laplace27(Box{33, 33, 4});
  MGHierarchy h(std::move(p.A), base_config());
  ASSERT_GE(h.nlevels(), 2);
  // z was too short to coarsen: it must be preserved on level 1.
  EXPECT_EQ(h.level(1).A_full.box().nz, 4);
  EXPECT_LT(h.level(1).A_full.box().nx, 33);
}

TEST(Hierarchy, BlockProblemKeepsBlockSize) {
  auto p = make_rhd3t(Box{10, 10, 10});
  MGHierarchy h(std::move(p.A), base_config());
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).A_full.block_size(), 3);
    EXPECT_EQ(h.level(l).A_stored.block_size(), 3);
  }
}

}  // namespace
}  // namespace smg
