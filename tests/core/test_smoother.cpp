// Smoother setup tests: diagonal-block inversion.
#include <gtest/gtest.h>

#include "core/smoother.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

TEST(Smoother, ScalarInvdiagIsReciprocal) {
  const Box box{3, 3, 3};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    A.at(cell, center) = 2.0 + static_cast<double>(cell);
  }
  const auto inv = compute_invdiag(A);
  ASSERT_EQ(inv.size(), static_cast<std::size_t>(A.ncells()));
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    EXPECT_NEAR(inv[static_cast<std::size_t>(cell)],
                1.0 / (2.0 + static_cast<double>(cell)), 1e-14);
  }
}

TEST(Smoother, BlockInvdiagIsTrueInverse) {
  const Box box{2, 2, 2};
  const int bs = 3;
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), bs, Layout::SOA);
  Rng rng(5);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int r = 0; r < bs; ++r) {
      for (int c = 0; c < bs; ++c) {
        A.at(cell, center, r, c) =
            (r == c ? 5.0 : 0.0) + rng.uniform(-1.0, 1.0);
      }
    }
  }
  const auto inv = compute_invdiag(A);
  // Check B * B^{-1} == I per cell.
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int r = 0; r < bs; ++r) {
      for (int c = 0; c < bs; ++c) {
        double acc = 0.0;
        for (int q = 0; q < bs; ++q) {
          acc += A.at(cell, center, r, q) *
                 inv[static_cast<std::size_t>(cell * bs * bs + q * bs + c)];
        }
        EXPECT_NEAR(acc, r == c ? 1.0 : 0.0, 1e-12)
            << "cell=" << cell << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(Smoother, PivotingSurvivesZeroLeadingDiagonalEntry) {
  const Box box{1, 1, 1};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 2, Layout::SOA);
  const int center = A.stencil().center();
  // Block [[0, 1], [1, 0]]: invertible but needs a row swap.
  A.at(0, center, 0, 0) = 0.0;
  A.at(0, center, 0, 1) = 1.0;
  A.at(0, center, 1, 0) = 1.0;
  A.at(0, center, 1, 1) = 0.0;
  const auto inv = compute_invdiag(A);
  EXPECT_NEAR(inv[0], 0.0, 1e-14);
  EXPECT_NEAR(inv[1], 1.0, 1e-14);
  EXPECT_NEAR(inv[2], 1.0, 1e-14);
  EXPECT_NEAR(inv[3], 0.0, 1e-14);
}

TEST(SmootherTruncate, RoundTripsThroughFp16) {
  avec<double> data = {1.0, 0.333333333333, -2.5, 1e-3};
  const auto guarded = truncate_smoother_data(data, Prec::FP16);
  EXPECT_EQ(guarded, 0u);
  EXPECT_EQ(data[0], 1.0);
  EXPECT_EQ(data[2], -2.5);
  // 1/3 carries only ~11 significand bits now.
  EXPECT_NEAR(data[1], 1.0 / 3.0, 3e-4);
  EXPECT_NE(data[1], 0.333333333333);
}

TEST(SmootherTruncate, GuardsOutOfRangeValues) {
  // 1/a_ii for a steel-stiffness diagonal (~1e-11) underflows FP16 and a
  // huge inverse overflows: both must keep full precision.
  avec<double> data = {1e-11, 1e7, 2.0};
  const auto guarded = truncate_smoother_data(data, Prec::FP16);
  EXPECT_EQ(guarded, 2u);
  EXPECT_EQ(data[0], 1e-11);
  EXPECT_EQ(data[1], 1e7);
  EXPECT_EQ(data[2], 2.0);
}

TEST(SmootherTruncate, Bf16AndFp32Paths) {
  avec<double> d1 = {1e-11, 0.1};
  EXPECT_EQ(truncate_smoother_data(d1, Prec::BF16), 0u);  // bf16 range is fp32's
  EXPECT_NEAR(d1[1], 0.1, 1e-3);
  avec<double> d2 = {0.1};
  EXPECT_EQ(truncate_smoother_data(d2, Prec::FP32), 0u);
  EXPECT_EQ(d2[0], static_cast<double>(0.1f));
  avec<double> d3 = {0.1};
  EXPECT_EQ(truncate_smoother_data(d3, Prec::FP64), 0u);
  EXPECT_EQ(d3[0], 0.1);
}

TEST(SmootherDeath, SingularBlockAborts) {
  const Box box{1, 1, 1};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 2, Layout::SOA);
  // Center block stays all-zero: singular.
  EXPECT_DEATH(compute_invdiag(A), "singular");
}

}  // namespace
}  // namespace smg
