// Precision-autopilot tests (DESIGN.md §9): threshold/env plumbing, storage
// analysis, the table-driven repair ladder, the setup-time planner
// (rescale-on-overflow, shift-on-underflow), the runtime governor, and the
// end-to-end forced-overflow recovery the Guarded policy exists for.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/autopilot.hpp"
#include "core/mg_hierarchy.hpp"
#include "core/mg_precond.hpp"
#include "obs/counters.hpp"
#include "fp/half.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "util/aligned.hpp"

namespace smg {
namespace {

MGConfig base_config() {
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  return cfg;
}

template <class KT>
LinOp<KT> op_of(const StructMat<KT>& A) {
  return [&A](std::span<const KT> x, std::span<KT> y) {
    spmv<KT, KT>(A, x, y);
  };
}

/// ||b - A x|| / ||b||.
double true_relres(const StructMat<double>& A, std::span<const double> b,
                   std::span<const double> x) {
  avec<double> r(b.size());
  residual<double, double>(A, b, x, {r.data(), r.size()});
  return nrm2<double>(std::span<const double>{r.data(), r.size()}) /
         nrm2<double>(b);
}

/// Count log entries matching (trigger, action).
int count_decisions(const MGHierarchy& h, AutopilotTrigger trig,
                    AutopilotAction act) {
  int n = 0;
  for (const AutopilotDecision& d : h.autopilot_log()) {
    if (d.trigger == trig && d.action == act) {
      ++n;
    }
  }
  return n;
}

// ---- policy / threshold plumbing ------------------------------------------

TEST(Autopilot, EffectivePolicyHonorsEnvOverride) {
  unsetenv("SMG_PRECISION_POLICY");
  EXPECT_EQ(effective_policy(PrecisionPolicy::Fixed), PrecisionPolicy::Fixed);
  EXPECT_EQ(effective_policy(PrecisionPolicy::Guarded),
            PrecisionPolicy::Guarded);

  setenv("SMG_PRECISION_POLICY", "guarded", 1);
  EXPECT_EQ(effective_policy(PrecisionPolicy::Fixed),
            PrecisionPolicy::Guarded);
  setenv("SMG_PRECISION_POLICY", "auto", 1);
  EXPECT_EQ(effective_policy(PrecisionPolicy::Fixed), PrecisionPolicy::Auto);
  setenv("SMG_PRECISION_POLICY", "fixed", 1);
  EXPECT_EQ(effective_policy(PrecisionPolicy::Guarded),
            PrecisionPolicy::Fixed);
  // Unknown values fall back to the configured policy.
  setenv("SMG_PRECISION_POLICY", "bogus", 1);
  EXPECT_EQ(effective_policy(PrecisionPolicy::Auto), PrecisionPolicy::Auto);
  unsetenv("SMG_PRECISION_POLICY");
}

TEST(Autopilot, ThresholdsFromEnv) {
  unsetenv("SMG_AUTOPILOT_FTZ");
  unsetenv("SMG_AUTOPILOT_SUBNORMAL");
  unsetenv("SMG_AUTOPILOT_SAFETY");
  unsetenv("SMG_AUTOPILOT_MAX_REPAIRS");
  const AutopilotThresholds def = AutopilotThresholds::from_env();
  EXPECT_EQ(def.max_ftz_frac, AutopilotThresholds{}.max_ftz_frac);
  EXPECT_EQ(def.max_repairs, AutopilotThresholds{}.max_repairs);

  setenv("SMG_AUTOPILOT_FTZ", "0.5", 1);
  setenv("SMG_AUTOPILOT_SUBNORMAL", "0.75", 1);
  setenv("SMG_AUTOPILOT_SAFETY", "0.125", 1);
  setenv("SMG_AUTOPILOT_MAX_REPAIRS", "3", 1);
  const AutopilotThresholds t = AutopilotThresholds::from_env();
  EXPECT_EQ(t.max_ftz_frac, 0.5);
  EXPECT_EQ(t.max_subnormal_frac, 0.75);
  EXPECT_EQ(t.repair_safety, 0.125);
  EXPECT_EQ(t.max_repairs, 3);
  // Garbage values fall back to the defaults.
  setenv("SMG_AUTOPILOT_FTZ", "not-a-number", 1);
  EXPECT_EQ(AutopilotThresholds::from_env().max_ftz_frac,
            AutopilotThresholds{}.max_ftz_frac);
  unsetenv("SMG_AUTOPILOT_FTZ");
  unsetenv("SMG_AUTOPILOT_SUBNORMAL");
  unsetenv("SMG_AUTOPILOT_SAFETY");
  unsetenv("SMG_AUTOPILOT_MAX_REPAIRS");
}

// ---- storage analysis ------------------------------------------------------

TEST(Autopilot, AnalyzeStorageInRangeMatrix) {
  auto p = make_laplace27(Box{8, 8, 8});  // values 26 and -1: in FP16 range
  const StorageAnalysis an = analyze_storage(p.A, Prec::FP16);
  EXPECT_GT(an.nonzero, 0u);
  EXPECT_LE(an.nonzero, an.values);
  EXPECT_EQ(an.overflow_frac, 0.0);
  EXPECT_EQ(an.ftz_frac, 0.0);
  EXPECT_EQ(an.subnormal_frac, 0.0);
  EXPECT_DOUBLE_EQ(an.max_abs, 26.0);
  EXPECT_DOUBLE_EQ(an.min_abs, 1.0);
  EXPECT_DOUBLE_EQ(an.headroom, static_cast<double>(kHalfMax) / 26.0);
  EXPECT_TRUE(storage_admissible(an, AutopilotThresholds{}));
}

TEST(Autopilot, AnalyzeStorageDetectsOverflow) {
  auto p = make_laplace27e8(Box{8, 8, 8});  // diagonal 2.6e9 >> FP16_MAX
  const StorageAnalysis an = analyze_storage(p.A, Prec::FP16);
  EXPECT_GT(an.overflow_frac, 0.0);
  EXPECT_LT(an.headroom, 1.0);
  EXPECT_FALSE(storage_admissible(an, AutopilotThresholds{}));
  // The same matrix is fine in BF16's FP32-like exponent range.
  const StorageAnalysis bf = analyze_storage(p.A, Prec::BF16);
  EXPECT_EQ(bf.overflow_frac, 0.0);
  EXPECT_TRUE(storage_admissible(bf, AutopilotThresholds{}));
}

TEST(Autopilot, AnalyzeStorageDetectsSubnormalAndFtz) {
  // FP16: min normal 2^-14 ~ 6.1e-5, min subnormal 2^-24 ~ 6.0e-8.
  auto p = make_laplace27(Box{6, 6, 6});
  for (double& v : p.A.values()) {
    v *= 1e-6;  // 2.6e-5 / 1e-6: all nonzeros subnormal, none flushed
  }
  StorageAnalysis an = analyze_storage(p.A, Prec::FP16);
  EXPECT_EQ(an.overflow_frac, 0.0);
  EXPECT_EQ(an.ftz_frac, 0.0);
  EXPECT_DOUBLE_EQ(an.subnormal_frac, 1.0);
  EXPECT_FALSE(storage_admissible(an, AutopilotThresholds{}));

  for (double& v : p.A.values()) {
    v *= 1e-3;  // 2.6e-8 / 1e-9: below half the min subnormal -> flushed
  }
  an = analyze_storage(p.A, Prec::FP16);
  EXPECT_DOUBLE_EQ(an.ftz_frac, 1.0);
  EXPECT_EQ(an.subnormal_frac, 0.0);
  EXPECT_FALSE(storage_admissible(an, AutopilotThresholds{}));
}

TEST(Autopilot, FormatRangeConstantsPerFormat) {
  // The admissibility analysis must judge each format against *its own*
  // edges, not FP16's.  These constants are the format edges DESIGN.md §9
  // and Theorem 4.1 reason about; a regression here silently corrupts every
  // headroom / underflow verdict for the format.
  const FormatRange h = format_range(Prec::FP16);
  EXPECT_EQ(h.max, 65504.0);
  EXPECT_EQ(h.min_normal, 0x1p-14);
  EXPECT_EQ(h.denorm_min, 0x1p-24);

  const FormatRange b = format_range(Prec::BF16);
  EXPECT_EQ(b.max, 0x1.FEp127);
  EXPECT_EQ(b.min_normal, 0x1p-126);
  EXPECT_EQ(b.denorm_min, 0x1p-133);
  // BF16's edges are nothing like FP16's — the audit this test pins down.
  EXPECT_GT(b.max / h.max, 1e30);
  EXPECT_LT(b.min_normal / h.min_normal, 1e-30);

  const FormatRange q = format_range(Prec::FP8);
  EXPECT_EQ(q.max, 240.0);
  EXPECT_EQ(q.min_normal, 0x1p-6);
  EXPECT_EQ(q.denorm_min, 0x1p-9);

  EXPECT_EQ(format_range(Prec::FP32).max,
            static_cast<double>(std::numeric_limits<float>::max()));
  EXPECT_EQ(format_range(Prec::FP64).max,
            std::numeric_limits<double>::max());
  for (const Prec p : {Prec::FP64, Prec::FP32, Prec::FP16, Prec::BF16,
                       Prec::FP8}) {
    const FormatRange r = format_range(p);
    EXPECT_EQ(r.max, format_max(p));  // the two tables must agree
    EXPECT_LT(r.denorm_min, r.min_normal);
  }
}

TEST(Autopilot, AnalyzeStoragePerFormatVerdicts) {
  // The same matrix can be admissible in one format and hopeless in the
  // next rung down.  Scaled up, laplace27's diagonal (26 -> 2600) overflows
  // FP8's 240 max but sits far inside FP16's 65504.
  auto p = make_laplace27(Box{6, 6, 6});
  for (double& v : p.A.values()) {
    v *= 100.0;  // center 2600, off-diagonals -100
  }
  const StorageAnalysis f16 = analyze_storage(p.A, Prec::FP16);
  EXPECT_EQ(f16.overflow_frac, 0.0);
  EXPECT_TRUE(storage_admissible(f16, AutopilotThresholds{}));
  const StorageAnalysis f8 = analyze_storage(p.A, Prec::FP8);
  EXPECT_GT(f8.overflow_frac, 0.0);  // 2600 > 240
  EXPECT_LT(f8.headroom, 1.0);
  EXPECT_FALSE(storage_admissible(f8, AutopilotThresholds{}));

  // And the underflow mirror: off-diagonals scaled to 2^-8 land in FP8's
  // subnormal zone (below its 2^-6 min normal) while remaining perfectly
  // normal FP16 values (min normal 2^-14).
  auto q = make_laplace27(Box{6, 6, 6});
  for (double& v : q.A.values()) {
    v *= 0x1p-8;  // off-diagonals 2^-8; center 26*2^-8, FP8-normal
  }
  const StorageAnalysis sub8 = analyze_storage(q.A, Prec::FP8);
  EXPECT_GT(sub8.subnormal_frac + sub8.ftz_frac, 0.9);
  EXPECT_FALSE(storage_admissible(sub8, AutopilotThresholds{}));
  const StorageAnalysis sub16 = analyze_storage(q.A, Prec::FP16);
  EXPECT_EQ(sub16.subnormal_frac, 0.0);
  EXPECT_EQ(sub16.ftz_frac, 0.0);
  EXPECT_TRUE(storage_admissible(sub16, AutopilotThresholds{}));
}

// ---- repair ladder (table-driven) -----------------------------------------

TEST(Autopilot, DecideRepairLadder) {
  const AutopilotThresholds t;
  LevelHealth h;
  h.values = 1000;

  // Compute-precision levels are never touched.
  h.storage = Prec::FP32;
  h.overflowed = 10;
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::None);
  EXPECT_EQ(decide_repair(h, HealthEvent::Stagnation, t), RepairKind::None);

  // Overflow on a scaled level with the rescale still unspent: rescale.
  h.storage = Prec::FP16;
  h.scaled = true;
  h.rescaled = false;
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::Rescale);
  EXPECT_EQ(decide_repair(h, HealthEvent::Stagnation, t),
            RepairKind::Rescale);

  // Rescale already spent, or never scaled: promotion is the only rung left.
  h.rescaled = true;
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::Promote);
  h.scaled = false;
  h.rescaled = false;
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::Promote);

  // No overflow: a NaN with a flush-to-zero storm promotes (rescaling would
  // push entries further into underflow); clean counters leave it alone.
  h.overflowed = 0;
  h.flushed = 500;  // 50% >> 1% threshold
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::Promote);
  h.flushed = 1;  // 0.1% < 1%
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::None);

  // Stagnation: subnormal evidence above threshold promotes.
  h.flushed = 0;
  h.subnormal = 400;  // 40% > 25%
  EXPECT_EQ(decide_repair(h, HealthEvent::Stagnation, t),
            RepairKind::Promote);
  h.subnormal = 100;  // 10% < 25%
  EXPECT_EQ(decide_repair(h, HealthEvent::Stagnation, t), RepairKind::None);
}

TEST(Autopilot, DecideRepairTreatsFp8AsNarrow) {
  // FP8 levels are narrow-stored: the repair ladder applies to them exactly
  // as it does to the 2-byte rungs.
  const AutopilotThresholds t;
  LevelHealth h;
  h.values = 1000;
  h.storage = Prec::FP8;
  h.scaled = true;  // FP8 storage is always scaled
  h.rescaled = false;
  h.overflowed = 10;
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::Rescale);
  h.rescaled = true;
  EXPECT_EQ(decide_repair(h, HealthEvent::NonFinite, t), RepairKind::Promote);
  h.overflowed = 0;
  h.subnormal = 400;
  EXPECT_EQ(decide_repair(h, HealthEvent::Stagnation, t),
            RepairKind::Promote);
}

TEST(Autopilot, NextRungUpWalksTheLadder) {
  // Promotion is one rung at a time: FP8 climbs to the configured 2-byte
  // format (so a BF16 config promotes FP8 -> BF16, not FP8 -> FP16), the
  // 2-byte formats climb to compute.  An FP8 rung under a config that never
  // stored a 2-byte format still passes through FP16 rather than jumping
  // straight to compute.
  EXPECT_EQ(next_rung_up(Prec::FP8, Prec::FP16, Prec::FP32), Prec::FP16);
  EXPECT_EQ(next_rung_up(Prec::FP8, Prec::BF16, Prec::FP32), Prec::BF16);
  EXPECT_EQ(next_rung_up(Prec::FP8, Prec::FP32, Prec::FP32), Prec::FP16);
  EXPECT_EQ(next_rung_up(Prec::FP16, Prec::FP16, Prec::FP32), Prec::FP32);
  EXPECT_EQ(next_rung_up(Prec::BF16, Prec::BF16, Prec::FP64), Prec::FP64);
  EXPECT_EQ(next_rung_up(Prec::FP32, Prec::FP16, Prec::FP64), Prec::FP64);
}

TEST(Autopilot, LevelRiskOrdersOverflowAboveUnderflow) {
  LevelHealth clean;
  clean.storage = Prec::FP16;
  clean.values = 100;

  LevelHealth sub = clean;
  sub.subnormal = 50;
  LevelHealth ftz = clean;
  ftz.flushed = 1;
  LevelHealth ovf = clean;
  ovf.overflowed = 1;

  EXPECT_GT(level_risk(sub), level_risk(clean));
  EXPECT_GT(level_risk(ftz), level_risk(sub));
  EXPECT_GT(level_risk(ovf), level_risk(ftz));

  LevelHealth wide = ovf;
  wide.storage = Prec::FP32;
  EXPECT_LT(level_risk(wide), 0.0);  // not a candidate
}

// ---- setup-time planner ----------------------------------------------------

TEST(Autopilot, PlannerRescuesForcedOverflow) {
  // scale_safety > 1 targets G > G_max: Fixed stores infinities, the planner
  // re-scales at the clamped repair safety and keeps FP16.
  auto p1 = make_laplace27e8(Box{12, 12, 12});
  MGConfig cfg = base_config();
  cfg.scale_safety = 4.0;
  MGHierarchy fixed(std::move(p1.A), cfg);
  EXPECT_GT(fixed.total_truncation().overflowed, 0u);
  EXPECT_TRUE(fixed.autopilot_log().empty());

  auto p2 = make_laplace27e8(Box{12, 12, 12});
  cfg.precision_policy = PrecisionPolicy::Auto;
  MGHierarchy auto_h(std::move(p2.A), cfg);
  EXPECT_EQ(auto_h.total_truncation().overflowed, 0u);
  EXPECT_EQ(auto_h.level(0).storage, Prec::FP16);
  EXPECT_TRUE(auto_h.level(0).scaled);
  EXPECT_GE(count_decisions(auto_h, AutopilotTrigger::SetupPlan,
                            AutopilotAction::Rescale),
            1);
  // The planner clamped G to repair_safety * G_max.
  EXPECT_NEAR(auto_h.level(0).g,
              auto_h.thresholds().repair_safety * auto_h.level(0).gmax,
              auto_h.level(0).gmax * 1e-12);
  // Auto does not pay for the retained FP64 copy; Guarded does.
  EXPECT_EQ(auto_h.level(0).A_setup.ncells(), 0);
}

TEST(Autopilot, PlannerShiftsUnderflowStorm) {
  // An unscaled FP16 level whose values sit in the subnormal range: the
  // planner shifts it (and everything coarser) to compute precision instead
  // of quantizing the whole operator into noise.
  auto p = make_laplace27(Box{12, 12, 12});
  for (double& v : p.A.values()) {
    v *= 1e-6;
  }
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  cfg.precision_policy = PrecisionPolicy::Auto;
  MGHierarchy h(std::move(p.A), cfg);
  EXPECT_EQ(h.config().shift_levid, 0);
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).A_stored.precision(), h.config().compute)
        << "level " << l;
  }
  EXPECT_GE(count_decisions(h, AutopilotTrigger::SetupPlan,
                            AutopilotAction::Shift),
            1);
  EXPECT_EQ(h.total_truncation().underflowed, 0u);
}

TEST(Autopilot, PlannerFallsBackOnDegenerateDiagonal) {
  // A negative diagonal entry voids Theorem 4.1; the level must fall back to
  // unscaled compute-precision storage instead of scaling into NaN.  (Not
  // zero: the smoother still needs invertible diagonal blocks.)
  auto p = make_laplace27e8(Box{10, 10, 10});
  p.A.at(0, p.A.stencil().center()) = -2.6e9;
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  MGHierarchy h(std::move(p.A), cfg);
  EXPECT_TRUE(h.level(0).degenerate_diag);
  EXPECT_FALSE(h.level(0).scaled);
  EXPECT_EQ(h.level(0).storage, h.config().compute);
  EXPECT_GE(count_decisions(h, AutopilotTrigger::DegenerateDiag,
                            AutopilotAction::Fallback),
            1);
}

TEST(Autopilot, FixedPolicyPlansNothing) {
  auto p = make_laplace27e8(Box{12, 12, 12});
  MGHierarchy h(std::move(p.A), base_config());
  EXPECT_EQ(h.policy(), PrecisionPolicy::Fixed);
  EXPECT_TRUE(h.autopilot_log().empty());
  EXPECT_EQ(h.level(0).A_setup.ncells(), 0);  // no retained copy
}

// ---- runtime repairs on the hierarchy -------------------------------------

TEST(Autopilot, RescaleLevelRetruncatesInPlace) {
  auto p = make_laplace27e8(Box{12, 12, 12});
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  MGHierarchy h(std::move(p.A), cfg);
  ASSERT_TRUE(h.level(0).scaled);
  ASSERT_GT(h.level(0).A_setup.ncells(), 0);

  const double g_before = h.level(0).g;
  const double gmax = h.level(0).gmax;
  EXPECT_TRUE(
      h.rescale_level(0, 0.125, AutopilotTrigger::NonFinite));
  EXPECT_NEAR(h.level(0).g, 0.125 * gmax, gmax * 1e-12);
  EXPECT_NE(h.level(0).g, g_before);
  EXPECT_EQ(h.level(0).trunc.overflowed, 0u);
  EXPECT_EQ(h.level(0).storage, Prec::FP16);
  // The rescaled copy still reproduces the original operator: the scaled
  // diagonal equals the new G and q2 followed as sqrt(G/G').
  const int center = h.level(0).A_setup.stencil().center();
  EXPECT_NEAR(h.level(0).A_setup.at(0, center), h.level(0).g,
              h.level(0).g * 1e-12);

  // Same safety again is a no-op and must be refused.
  EXPECT_FALSE(h.rescale_level(0, 0.125, AutopilotTrigger::NonFinite));
  // Out-of-range levels and nonsense safeties are refused.
  EXPECT_FALSE(h.rescale_level(99, 0.125, AutopilotTrigger::NonFinite));
  EXPECT_FALSE(h.rescale_level(0, 0.0, AutopilotTrigger::NonFinite));
}

TEST(Autopilot, PromoteLevelWidensOnly) {
  auto p = make_laplace27(Box{12, 12, 12});
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  MGHierarchy h(std::move(p.A), cfg);
  ASSERT_EQ(h.level(0).storage, Prec::FP16);

  // Narrowing and same-width "promotions" are refused.
  EXPECT_FALSE(h.promote_level(0, Prec::FP16, AutopilotTrigger::NonFinite));
  EXPECT_TRUE(h.promote_level(0, Prec::FP32, AutopilotTrigger::NonFinite));
  EXPECT_EQ(h.level(0).storage, Prec::FP32);
  EXPECT_EQ(h.level(0).A_stored.precision(), Prec::FP32);
  EXPECT_EQ(h.level(0).trunc.overflowed, 0u);
  EXPECT_EQ(h.level(0).trunc.subnormal, 0u);
  EXPECT_FALSE(h.promote_level(0, Prec::FP32, AutopilotTrigger::NonFinite));
}

TEST(Autopilot, GovernorEscalatesDeepestTwoByteLevel) {
  // Clean counters + a NaN event: no level is directly implicated, so the
  // governor concedes the deepest 2-byte level (the §4.3 shift direction).
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  MGHierarchy h(std::move(p.A), cfg);
  ASSERT_GE(h.nlevels(), 3);

  PrecisionGovernor gov(&h);
  const int deepest = h.nlevels() - 1;
  ASSERT_EQ(h.level(deepest).storage, Prec::FP16);

  const std::vector<int> repaired = gov.on_event(HealthEvent::NonFinite);
  ASSERT_EQ(repaired.size(), 1u);
  EXPECT_EQ(repaired.front(), deepest);
  EXPECT_EQ(h.level(deepest).storage, h.config().compute);
  EXPECT_EQ(gov.repairs(), 1);

  // Each further event walks one level up; after all levels are promoted
  // the governor reports nothing left to try.
  for (int l = deepest - 1; l >= 0; --l) {
    const std::vector<int> r = gov.on_event(HealthEvent::Stagnation);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.front(), l);
  }
  EXPECT_TRUE(gov.on_event(HealthEvent::NonFinite).empty());
  EXPECT_GE(count_decisions(h, AutopilotTrigger::NonFinite,
                            AutopilotAction::Promote),
            1);
  EXPECT_GE(count_decisions(h, AutopilotTrigger::Stagnation,
                            AutopilotAction::Promote),
            1);
}

TEST(Autopilot, GovernorWalksFp8ThroughTwoByteToCompute) {
  // An FP8 rung under the Guarded governor concedes one rung per event:
  // FP8 -> FP16 (still narrow, still scaled) -> compute.  It must not jump
  // straight from 1 byte to 4.
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  cfg.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};
  // The coarse Galerkin operators put ~27% of their scaled entries in FP8's
  // subnormal zone and ~3% below its flush threshold; loosen the planner's
  // vetoes so the rung survives setup — this test is about the *runtime*
  // walk, not setup admissibility (which PlannerShiftsUnderflowStorm and
  // the ladder tests already cover).
  setenv("SMG_AUTOPILOT_SUBNORMAL", "0.5", 1);
  setenv("SMG_AUTOPILOT_FTZ", "0.1", 1);
  MGHierarchy h(std::move(p.A), cfg);
  unsetenv("SMG_AUTOPILOT_SUBNORMAL");
  unsetenv("SMG_AUTOPILOT_FTZ");
  ASSERT_GE(h.nlevels(), 3);
  const int deepest = h.nlevels() - 1;
  ASSERT_EQ(h.level(deepest).storage, Prec::FP8);

  PrecisionGovernor gov(&h);
  std::vector<int> r = gov.on_event(HealthEvent::NonFinite);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.front(), deepest);
  EXPECT_EQ(h.level(deepest).storage, Prec::FP16);  // one rung, not two
  EXPECT_EQ(h.level(deepest).A_stored.precision(), Prec::FP16);

  r = gov.on_event(HealthEvent::NonFinite);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.front(), deepest);  // same level climbs again
  EXPECT_EQ(h.level(deepest).storage, h.config().compute);
  EXPECT_GE(count_decisions(h, AutopilotTrigger::NonFinite,
                            AutopilotAction::Promote),
            2);
}

TEST(Autopilot, GovernorRespectsRepairBudget) {
  setenv("SMG_AUTOPILOT_MAX_REPAIRS", "1", 1);
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  MGHierarchy h(std::move(p.A), cfg);
  unsetenv("SMG_AUTOPILOT_MAX_REPAIRS");
  ASSERT_EQ(h.thresholds().max_repairs, 1);

  PrecisionGovernor gov(&h);
  EXPECT_EQ(gov.on_event(HealthEvent::NonFinite).size(), 1u);
  EXPECT_TRUE(gov.on_event(HealthEvent::NonFinite).empty());
  EXPECT_EQ(gov.repairs(), 1);
}

TEST(Autopilot, CounterDeltaIsolatesRepairs) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = base_config();
  cfg.precision_policy = PrecisionPolicy::Guarded;
  MGHierarchy h(std::move(p.A), cfg);
  const auto before = obs::collect_precision_counters(h);

  PrecisionGovernor gov(&h);
  const std::vector<int> repaired = gov.on_event(HealthEvent::NonFinite);
  ASSERT_EQ(repaired.size(), 1u);
  const int deep = repaired.front();

  const auto after = obs::collect_precision_counters(h);
  const auto delta = obs::counter_delta(before, after);
  ASSERT_EQ(delta.size(), before.size());
  for (const obs::LevelPrecisionDelta& d : delta) {
    if (d.level == deep) {
      EXPECT_TRUE(d.storage_changed);
      EXPECT_EQ(d.storage_before, Prec::FP16);
      EXPECT_EQ(d.storage_after, h.config().compute);
      EXPECT_EQ(d.promotions, 1u);
      EXPECT_EQ(d.rescales, 0u);
    } else {
      EXPECT_FALSE(d.storage_changed) << "level " << d.level;
      EXPECT_EQ(d.promotions, 0u) << "level " << d.level;
      EXPECT_EQ(d.rescales, 0u) << "level " << d.level;
    }
  }
}

// ---- end-to-end: Guarded rescues the forced-overflow solve ----------------

TEST(Autopilot, GuardedSolveSurvivesForcedOverflow) {
  const Box box{12, 12, 12};
  MGConfig cfg = base_config();
  cfg.scale_safety = 4.0;  // G = 4 * G_max: guaranteed stored infinities

  // Fixed: the poisoned preconditioner must surface as a breakdown.
  {
    auto p = make_laplace27e8(box);
    const StructMat<double> A = p.A;
    MGHierarchy h(std::move(p.A), cfg);
    auto M = make_mg_precond<double>(h);
    const std::size_t n = p.b.size();
    avec<double> x(n, 0.0);
    SolveOptions opts;
    opts.max_iters = 60;
    const auto res =
        pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
    EXPECT_FALSE(res.converged);
    EXPECT_TRUE(res.breakdown);
  }

  // Guarded: the same configuration converges like a sane one, on FP16.
  {
    auto p = make_laplace27e8(box);
    const StructMat<double> A = p.A;
    cfg.precision_policy = PrecisionPolicy::Guarded;
    MGHierarchy h(std::move(p.A), cfg);
    auto M = make_mg_precond<double>(h);
    const std::size_t n = p.b.size();
    avec<double> x(n, 0.0);
    SolveOptions opts;
    opts.max_iters = 60;
    const auto res =
        pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
    EXPECT_TRUE(res.converged) << res.status();
    EXPECT_LE(res.iters, 25);  // same budget the healthy config meets
    EXPECT_LT(true_relres(A, {p.b.data(), n}, {x.data(), n}), 1e-9);
    EXPECT_EQ(h.level(0).storage, Prec::FP16);  // kept the bandwidth win
    EXPECT_FALSE(h.autopilot_log().empty());
  }
}

TEST(Autopilot, ReportHealthRunsLadderOnlyWhenGuarded) {
  {
    auto p = make_laplace27(Box{12, 12, 12});
    MGHierarchy h(std::move(p.A), base_config());
    auto M = make_mg_precond<double>(h);
    EXPECT_FALSE(M->self_healing());
    EXPECT_FALSE(M->report_health(HealthEvent::Stagnation));
    EXPECT_TRUE(h.autopilot_log().empty());
  }
  {
    auto p = make_laplace27(Box{12, 12, 12});
    MGConfig cfg = base_config();
    cfg.precision_policy = PrecisionPolicy::Guarded;
    MGHierarchy h(std::move(p.A), cfg);
    auto M = make_mg_precond<double>(h);
    EXPECT_TRUE(M->self_healing());
    EXPECT_TRUE(M->report_health(HealthEvent::Stagnation));
    EXPECT_GE(count_decisions(h, AutopilotTrigger::Stagnation,
                              AutopilotAction::Promote),
              1);
  }
}

}  // namespace
}  // namespace smg
