// Theorem 4.1 scaling tests: G_max admissibility, overflow-free truncation,
// exact recovery.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/scaling.hpp"
#include "fp/convert.hpp"
#include "fp/half.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

/// SPD-style matrix with positive diagonal and values spanning many decades.
StructMat<double> wild_matrix(const Box& box, double decades,
                              std::uint64_t seed = 7) {
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  Rng rng(seed);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    const double mag = std::pow(10.0, rng.uniform(-decades, decades));
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) = d == center ? 7.0 * mag : -mag * rng.uniform(0.5, 1.0);
    }
  }
  A.clear_out_of_box();
  return A;
}

TEST(Scaling, GmaxAdmitsNoOverflow) {
  auto A = wild_matrix(Box{6, 6, 6}, 8.0);
  EXPECT_GT(max_abs_value(A), static_cast<double>(kHalfMax));

  const double gmax = compute_gmax(A, kHalfMax);
  EXPECT_GT(gmax, 0.0);

  // Theorem 4.1: any G < G_max keeps every scaled entry below FP16_MAX.
  for (double safety : {0.999, 0.5, 0.25, 0.01}) {
    auto B = A;
    const ScaleResult sr = scale_matrix(B, safety, kHalfMax);
    EXPECT_TRUE(sr.applied);
    EXPECT_LT(max_abs_value(B), static_cast<double>(kHalfMax) * 1.0000001)
        << "safety=" << safety;
    TruncateReport rep;
    auto H = convert<half>(B, Layout::SOA, &rep);
    EXPECT_EQ(rep.overflowed, 0u) << "safety=" << safety;
  }
}

TEST(Scaling, ScaledDiagonalEqualsG) {
  // After Q^{-1/2} A Q^{-1/2} with Q = diag(A)/G the diagonal becomes G.
  auto A = wild_matrix(Box{5, 5, 5}, 6.0);
  const ScaleResult sr = scale_matrix(A, 0.25, kHalfMax);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    EXPECT_NEAR(A.at(cell, center), sr.G, sr.G * 1e-12);
  }
}

TEST(Scaling, RecoveryReproducesOriginal) {
  auto A = wild_matrix(Box{4, 4, 4}, 5.0);
  const StructMat<double> orig = A;
  const ScaleResult sr = scale_matrix(A, 0.25, kHalfMax);

  // a_ij == q2_i * a_hat_ij * q2_j entrywise.
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
          const double rec = sr.q2[static_cast<std::size_t>(cell)] *
                             A.at(cell, d) *
                             sr.q2[static_cast<std::size_t>(nbr)];
          EXPECT_NEAR(rec, orig.at(cell, d),
                      std::abs(orig.at(cell, d)) * 1e-12 + 1e-300);
        }
      }
    }
  }
}

TEST(Scaling, BlockMatrixPerDofDiagonal) {
  const Box box{3, 3, 3};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 3, Layout::SOA);
  Rng rng(17);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    const double mag = std::pow(10.0, rng.uniform(-6.0, 6.0));
    for (int d = 0; d < A.ndiag(); ++d) {
      for (int br = 0; br < 3; ++br) {
        for (int bc = 0; bc < 3; ++bc) {
          A.at(cell, d, br, bc) = (d == center && br == bc)
                                      ? 20.0 * mag
                                      : -mag * rng.uniform(0.1, 1.0);
        }
      }
    }
  }
  A.clear_out_of_box();
  const ScaleResult sr = scale_matrix(A, 0.25, kHalfMax);
  EXPECT_EQ(sr.q2.size(), static_cast<std::size_t>(A.nrows()));
  EXPECT_LT(max_abs_value(A), static_cast<double>(kHalfMax));
  TruncateReport rep;
  convert<half>(A, Layout::SOA, &rep);
  EXPECT_EQ(rep.overflowed, 0u);
}

TEST(Scaling, DirectTruncationOfWildMatrixOverflows) {
  // The control experiment: without scaling the same matrix produces inf.
  auto A = wild_matrix(Box{5, 5, 5}, 8.0);
  TruncateReport rep;
  convert<half>(A, Layout::SOA, &rep);
  EXPECT_GT(rep.overflowed, 0u);
}

TEST(Scaling, DegenerateDiagonalIsRefusedAndMatrixUntouched) {
  // Theorem 4.1 requires a strictly positive finite diagonal; a zero,
  // negative, or non-finite entry must refuse the scaling and leave the
  // matrix exactly as it was (no partial NaN pollution).
  for (const double bad :
       {0.0, -3.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    auto A = wild_matrix(Box{4, 4, 4}, 6.0);
    A.at(3, A.stencil().center()) = bad;
    const StructMat<double> orig = A;

    EXPECT_FALSE(diagonal_positive(A));
    EXPECT_TRUE(std::isnan(compute_gmax(A, kHalfMax)));

    const ScaleResult sr = scale_matrix(A, 0.25, kHalfMax);
    EXPECT_FALSE(sr.applied);
    EXPECT_FALSE(sr.diag_ok);
    EXPECT_TRUE(std::isnan(sr.gmax));
    EXPECT_TRUE(sr.q2.empty());
    const auto& av = A.values();
    const auto& ov = orig.values();
    ASSERT_EQ(av.size(), ov.size());
    for (std::size_t i = 0; i < av.size(); ++i) {
      // Bitwise untouched (NaN-safe comparison via memcmp semantics).
      ASSERT_TRUE(av[i] == ov[i] || (std::isnan(av[i]) && std::isnan(ov[i])))
          << "entry " << i;
    }
  }
}

TEST(Scaling, HealthyDiagonalReportsDiagOk) {
  auto A = wild_matrix(Box{4, 4, 4}, 6.0);
  EXPECT_TRUE(diagonal_positive(A));
  const ScaleResult sr = scale_matrix(A, 0.25, kHalfMax);
  EXPECT_TRUE(sr.applied);
  EXPECT_TRUE(sr.diag_ok);
}

TEST(Scaling, MinMaxAbsHelpers) {
  StructMat<double> A(Box{2, 2, 2}, Stencil::make(Pattern::P3d7), 1,
                      Layout::SOA);
  A.at(0, A.stencil().center()) = -42.0;
  A.at(1, A.stencil().center()) = 1e-5;
  EXPECT_DOUBLE_EQ(max_abs_value(A), 42.0);
  EXPECT_DOUBLE_EQ(min_abs_nonzero(A), 1e-5);
}

TEST(Scaling, GmaxScalesLinearlyWithS) {
  auto A = wild_matrix(Box{4, 4, 4}, 4.0);
  const double g16 = compute_gmax(A, kHalfMax);
  const double g2 = compute_gmax(A, 2.0 * kHalfMax);
  EXPECT_NEAR(g2 / g16, 2.0, 1e-12);
}

}  // namespace
}  // namespace smg
