// Transfer operator tests: geometry, R = P^T duality, constant preservation.
#include <gtest/gtest.h>

#include <vector>

#include "core/transfer.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

TEST(Coarsening, HalvesLongDimsOnly) {
  const Coarsening c = Coarsening::make(Box{9, 8, 3}, 5);
  EXPECT_TRUE(c.mask[0]);
  EXPECT_TRUE(c.mask[1]);
  EXPECT_FALSE(c.mask[2]);  // 3 < min_dim
  EXPECT_EQ(c.coarse.nx, 5);
  EXPECT_EQ(c.coarse.ny, 4);
  EXPECT_EQ(c.coarse.nz, 3);
  EXPECT_TRUE(c.any());
}

TEST(Coarsening, StopsWhenAllDimsShort) {
  const Coarsening c = Coarsening::make(Box{3, 4, 2}, 5);
  EXPECT_FALSE(c.any());
}

TEST(Transfer, ProlongOfConstantIsConstantInInterior) {
  // Trilinear interpolation reproduces constants wherever all parents exist.
  const Coarsening c = Coarsening::make(Box{9, 9, 9}, 5);
  avec<double> ec(static_cast<std::size_t>(c.coarse.size()), 1.0);
  avec<double> uf(static_cast<std::size_t>(c.fine.size()), 0.0);
  prolong_add<double>(c, 1, {ec.data(), ec.size()}, {uf.data(), uf.size()});
  for (int k = 0; k < c.fine.nz; ++k) {
    for (int j = 0; j < c.fine.ny; ++j) {
      for (int i = 0; i < c.fine.nx; ++i) {
        EXPECT_NEAR(uf[static_cast<std::size_t>(c.fine.idx(i, j, k))], 1.0,
                    1e-14)
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Transfer, ProlongAccumulates) {
  const Coarsening c = Coarsening::make(Box{5, 5, 5}, 5);
  avec<double> ec(static_cast<std::size_t>(c.coarse.size()), 2.0);
  avec<double> uf(static_cast<std::size_t>(c.fine.size()), 10.0);
  prolong_add<double>(c, 1, {ec.data(), ec.size()}, {uf.data(), uf.size()});
  EXPECT_NEAR(uf[0], 12.0, 1e-14);  // corner fine point is a coarse point
}

TEST(Transfer, RestrictionIsScaledTransposeOfProlongation) {
  // <R r, e>_coarse == restrict_scale * <r, P e>_fine for random vectors:
  // verifies R = (1/2^d) P^T including every boundary-clipping case.
  for (const Box fine : {Box{8, 7, 6}, Box{9, 9, 9}, Box{6, 3, 10}}) {
    const Coarsening c = Coarsening::make(fine, 5);
    for (int bs : {1, 3}) {
      Rng rng(1234);
      const std::size_t nf = static_cast<std::size_t>(fine.size() * bs);
      const std::size_t nc =
          static_cast<std::size_t>(c.coarse.size() * bs);
      avec<double> r(nf), e(nc), Rr(nc), Pe(nf, 0.0);
      for (auto& v : r) {
        v = rng.uniform(-1.0, 1.0);
      }
      for (auto& v : e) {
        v = rng.uniform(-1.0, 1.0);
      }
      restrict_to_coarse<double>(c, bs, {r.data(), nf}, {Rr.data(), nc});
      prolong_add<double>(c, bs, {e.data(), nc}, {Pe.data(), nf});
      double lhs = 0.0, rhs = 0.0;
      for (std::size_t i = 0; i < nc; ++i) {
        lhs += Rr[i] * e[i];
      }
      for (std::size_t i = 0; i < nf; ++i) {
        rhs += r[i] * Pe[i];
      }
      rhs *= c.restrict_scale();
      EXPECT_NEAR(lhs, rhs, 1e-10 * (std::abs(lhs) + 1.0))
          << "fine=" << fine.nx << "x" << fine.ny << "x" << fine.nz
          << " bs=" << bs;
    }
  }
}

TEST(Transfer, RestrictZeroIsZero) {
  const Coarsening c = Coarsening::make(Box{7, 7, 7}, 5);
  avec<double> r(static_cast<std::size_t>(c.fine.size()), 0.0);
  avec<double> fc(static_cast<std::size_t>(c.coarse.size()), 99.0);
  restrict_to_coarse<double>(c, 1, {r.data(), r.size()},
                             {fc.data(), fc.size()});
  for (double v : fc) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(Transfer, SemicoarsenedDimIsIdentity) {
  // With nz uncoarsened, restriction along z must be the identity map.
  const Coarsening c = Coarsening::make(Box{9, 9, 3}, 5);
  ASSERT_FALSE(c.mask[2]);
  ASSERT_DOUBLE_EQ(c.restrict_scale(), 0.25);  // x and y coarsened only
  avec<double> r(static_cast<std::size_t>(c.fine.size()), 0.0);
  // A single fine point at an even (i,j) lands on exactly one coarse point
  // with the full-weighting normalization 1/4.
  r[static_cast<std::size_t>(c.fine.idx(4, 4, 1))] = 5.0;
  avec<double> fc(static_cast<std::size_t>(c.coarse.size()), 0.0);
  restrict_to_coarse<double>(c, 1, {r.data(), r.size()},
                             {fc.data(), fc.size()});
  EXPECT_NEAR(fc[static_cast<std::size_t>(c.coarse.idx(2, 2, 1))], 1.25,
              1e-14);
  double total = 0.0;
  for (double v : fc) {
    total += v;
  }
  EXPECT_NEAR(total, 1.25, 1e-14);
}

TEST(Transfer, ParentWeightsSumToOneInside) {
  // Odd fine index between two interior coarse points: weights 1/2 + 1/2.
  const auto p = detail::parents_of(3, 4, true);
  ASSERT_EQ(p.count, 2);
  EXPECT_EQ(p.idx[0], 1);
  EXPECT_EQ(p.idx[1], 2);
  EXPECT_DOUBLE_EQ(p.w[0] + p.w[1], 1.0);
}

TEST(Transfer, BoundaryOddPointLosesClippedParent) {
  // Fine index n-1 odd with its upper parent clipped: weight 1/2 only
  // (Dirichlet truncation).
  const auto p = detail::parents_of(7, 4, true);  // upper parent would be 4
  ASSERT_EQ(p.count, 1);
  EXPECT_EQ(p.idx[0], 3);
  EXPECT_DOUBLE_EQ(p.w[0], 0.5);
}

}  // namespace
}  // namespace smg
