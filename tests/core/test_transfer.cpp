// Transfer operator tests: geometry, R = P^T duality, constant preservation,
// gather/scatter equivalence, and thread-count invariance.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "core/transfer.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

TEST(Coarsening, HalvesLongDimsOnly) {
  const Coarsening c = Coarsening::make(Box{9, 8, 3}, 5);
  EXPECT_TRUE(c.mask[0]);
  EXPECT_TRUE(c.mask[1]);
  EXPECT_FALSE(c.mask[2]);  // 3 < min_dim
  EXPECT_EQ(c.coarse.nx, 5);
  EXPECT_EQ(c.coarse.ny, 4);
  EXPECT_EQ(c.coarse.nz, 3);
  EXPECT_TRUE(c.any());
}

TEST(Coarsening, StopsWhenAllDimsShort) {
  const Coarsening c = Coarsening::make(Box{3, 4, 2}, 5);
  EXPECT_FALSE(c.any());
}

TEST(Transfer, ProlongOfConstantIsConstantInInterior) {
  // Trilinear interpolation reproduces constants wherever all parents exist.
  const Coarsening c = Coarsening::make(Box{9, 9, 9}, 5);
  avec<double> ec(static_cast<std::size_t>(c.coarse.size()), 1.0);
  avec<double> uf(static_cast<std::size_t>(c.fine.size()), 0.0);
  prolong_add<double>(c, 1, {ec.data(), ec.size()}, {uf.data(), uf.size()});
  for (int k = 0; k < c.fine.nz; ++k) {
    for (int j = 0; j < c.fine.ny; ++j) {
      for (int i = 0; i < c.fine.nx; ++i) {
        EXPECT_NEAR(uf[static_cast<std::size_t>(c.fine.idx(i, j, k))], 1.0,
                    1e-14)
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Transfer, ProlongAccumulates) {
  const Coarsening c = Coarsening::make(Box{5, 5, 5}, 5);
  avec<double> ec(static_cast<std::size_t>(c.coarse.size()), 2.0);
  avec<double> uf(static_cast<std::size_t>(c.fine.size()), 10.0);
  prolong_add<double>(c, 1, {ec.data(), ec.size()}, {uf.data(), uf.size()});
  EXPECT_NEAR(uf[0], 12.0, 1e-14);  // corner fine point is a coarse point
}

TEST(Transfer, RestrictionIsScaledTransposeOfProlongation) {
  // <R r, e>_coarse == restrict_scale * <r, P e>_fine for random vectors:
  // verifies R = (1/2^d) P^T including every boundary-clipping case.
  for (const Box fine : {Box{8, 7, 6}, Box{9, 9, 9}, Box{6, 3, 10}}) {
    const Coarsening c = Coarsening::make(fine, 5);
    for (int bs : {1, 3}) {
      Rng rng(1234);
      const std::size_t nf = static_cast<std::size_t>(fine.size() * bs);
      const std::size_t nc =
          static_cast<std::size_t>(c.coarse.size() * bs);
      avec<double> r(nf), e(nc), Rr(nc), Pe(nf, 0.0);
      for (auto& v : r) {
        v = rng.uniform(-1.0, 1.0);
      }
      for (auto& v : e) {
        v = rng.uniform(-1.0, 1.0);
      }
      restrict_to_coarse<double>(c, bs, {r.data(), nf}, {Rr.data(), nc});
      prolong_add<double>(c, bs, {e.data(), nc}, {Pe.data(), nf});
      double lhs = 0.0, rhs = 0.0;
      for (std::size_t i = 0; i < nc; ++i) {
        lhs += Rr[i] * e[i];
      }
      for (std::size_t i = 0; i < nf; ++i) {
        rhs += r[i] * Pe[i];
      }
      rhs *= c.restrict_scale();
      EXPECT_NEAR(lhs, rhs, 1e-10 * (std::abs(lhs) + 1.0))
          << "fine=" << fine.nx << "x" << fine.ny << "x" << fine.nz
          << " bs=" << bs;
    }
  }
}

TEST(Transfer, RestrictZeroIsZero) {
  const Coarsening c = Coarsening::make(Box{7, 7, 7}, 5);
  avec<double> r(static_cast<std::size_t>(c.fine.size()), 0.0);
  avec<double> fc(static_cast<std::size_t>(c.coarse.size()), 99.0);
  restrict_to_coarse<double>(c, 1, {r.data(), r.size()},
                             {fc.data(), fc.size()});
  for (double v : fc) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(Transfer, SemicoarsenedDimIsIdentity) {
  // With nz uncoarsened, restriction along z must be the identity map.
  const Coarsening c = Coarsening::make(Box{9, 9, 3}, 5);
  ASSERT_FALSE(c.mask[2]);
  ASSERT_DOUBLE_EQ(c.restrict_scale(), 0.25);  // x and y coarsened only
  avec<double> r(static_cast<std::size_t>(c.fine.size()), 0.0);
  // A single fine point at an even (i,j) lands on exactly one coarse point
  // with the full-weighting normalization 1/4.
  r[static_cast<std::size_t>(c.fine.idx(4, 4, 1))] = 5.0;
  avec<double> fc(static_cast<std::size_t>(c.coarse.size()), 0.0);
  restrict_to_coarse<double>(c, 1, {r.data(), r.size()},
                             {fc.data(), fc.size()});
  EXPECT_NEAR(fc[static_cast<std::size_t>(c.coarse.idx(2, 2, 1))], 1.25,
              1e-14);
  double total = 0.0;
  for (double v : fc) {
    total += v;
  }
  EXPECT_NEAR(total, 1.25, 1e-14);
}

TEST(Transfer, ParentWeightsSumToOneInside) {
  // Odd fine index between two interior coarse points: weights 1/2 + 1/2.
  const auto p = detail::parents_of(3, 4, true);
  ASSERT_EQ(p.count, 2);
  EXPECT_EQ(p.idx[0], 1);
  EXPECT_EQ(p.idx[1], 2);
  EXPECT_DOUBLE_EQ(p.w[0] + p.w[1], 1.0);
}

TEST(Transfer, BoundaryOddPointLosesClippedParent) {
  // Fine index n-1 odd with its upper parent clipped: weight 1/2 only
  // (Dirichlet truncation).
  const auto p = detail::parents_of(7, 4, true);  // upper parent would be 4
  ASSERT_EQ(p.count, 1);
  EXPECT_EQ(p.idx[0], 3);
  EXPECT_DOUBLE_EQ(p.w[0], 0.5);
}

TEST(Transfer, ChildrenOfIsTransposeOfParentsOf) {
  // For every (fine, coarse) pair, x appears in children_of(X) with weight w
  // iff X appears in parents_of(x) with the same w — R and P^T agree entry
  // by entry, including every boundary clipping.
  for (int nf : {5, 6, 9, 10}) {
    const int nc = (nf + 1) / 2;
    for (int X = 0; X < nc; ++X) {
      const auto c = detail::children_of(X, nf, true);
      for (int a = 0; a < c.count; ++a) {
        const auto p = detail::parents_of(c.idx[a], nc, true);
        double w = 0.0;
        for (int b = 0; b < p.count; ++b) {
          if (p.idx[b] == X) {
            w = p.w[b];
          }
        }
        EXPECT_DOUBLE_EQ(w, c.w[a]) << "nf=" << nf << " X=" << X
                                    << " child=" << c.idx[a];
      }
    }
    // And the reverse inclusion: every parent relation appears as a child.
    for (int x = 0; x < nf; ++x) {
      const auto p = detail::parents_of(x, nc, true);
      for (int b = 0; b < p.count; ++b) {
        const auto c = detail::children_of(p.idx[b], nf, true);
        bool found = false;
        for (int a = 0; a < c.count; ++a) {
          found = found || (c.idx[a] == x && c.w[a] == p.w[b]);
        }
        EXPECT_TRUE(found) << "nf=" << nf << " x=" << x;
      }
    }
  }
}

TEST(Transfer, ChildrenOfUncoarsenedDimIsIdentity) {
  const auto c = detail::children_of(4, 5, false);
  ASSERT_EQ(c.count, 1);
  EXPECT_EQ(c.idx[0], 4);
  EXPECT_DOUBLE_EQ(c.w[0], 1.0);
}

TEST(Transfer, GatherRestrictionMatchesScatterReference) {
  // The parallel gather form and the serial scatter reference compute the
  // same operator; only the per-coarse-dof summation order differs, so the
  // results agree to rounding.
  for (const Box fine : {Box{8, 7, 6}, Box{9, 9, 3}, Box{5, 10, 7}}) {
    const Coarsening c = Coarsening::make(fine, 5);
    for (int bs : {1, 3}) {
      Rng rng(99);
      const std::size_t nf = static_cast<std::size_t>(fine.size() * bs);
      const std::size_t nc = static_cast<std::size_t>(c.coarse.size() * bs);
      avec<double> r(nf), g(nc), s(nc);
      for (auto& v : r) {
        v = rng.uniform(-1.0, 1.0);
      }
      restrict_to_coarse<double>(c, bs, {r.data(), nf}, {g.data(), nc});
      restrict_to_coarse_scatter<double>(c, bs, {r.data(), nf},
                                         {s.data(), nc});
      for (std::size_t i = 0; i < nc; ++i) {
        EXPECT_NEAR(g[i], s[i], 1e-13) << "i=" << i << " bs=" << bs;
      }
    }
  }
}

#if defined(_OPENMP)
TEST(Transfer, GatherTransfersAreThreadCountInvariant) {
  // Each coarse (restriction) / fine (prolongation) dof is written by
  // exactly one iteration with a fixed inner summation order, so the result
  // must be bitwise independent of the thread count.
  const Box fine{19, 14, 11};
  const Coarsening c = Coarsening::make(fine, 5);
  const int bs = 2;
  Rng rng(7);
  const std::size_t nf = static_cast<std::size_t>(fine.size() * bs);
  const std::size_t nc = static_cast<std::size_t>(c.coarse.size() * bs);
  avec<double> r(nf), e(nc);
  for (auto& v : r) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (auto& v : e) {
    v = rng.uniform(-1.0, 1.0);
  }
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  avec<double> fc1(nc), uf1(nf, 0.5);
  restrict_to_coarse<double>(c, bs, {r.data(), nf}, {fc1.data(), nc});
  prolong_add<double>(c, bs, {e.data(), nc}, {uf1.data(), nf});
  for (int nt : {2, 3, 5, 8}) {
    omp_set_num_threads(nt);
    avec<double> fc(nc), uf(nf, 0.5);
    restrict_to_coarse<double>(c, bs, {r.data(), nf}, {fc.data(), nc});
    prolong_add<double>(c, bs, {e.data(), nc}, {uf.data(), nf});
    EXPECT_EQ(0, std::memcmp(fc.data(), fc1.data(), nc * sizeof(double)))
        << "restrict threads=" << nt;
    EXPECT_EQ(0, std::memcmp(uf.data(), uf1.data(), nf * sizeof(double)))
        << "prolong threads=" << nt;
  }
  omp_set_num_threads(saved);
}
#endif

}  // namespace
}  // namespace smg
