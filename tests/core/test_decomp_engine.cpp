// Decomposed-engine equivalence: with raw-precision halos, a Jacobi-smoothed
// V-cycle over {2,2,2} boxes is bitwise identical to the single-box path
// across stencils, layouts, storage precisions and block sizes; PCG
// convergence histories match exactly under deterministic reductions; the
// decomposed SymGS variant (per-box sweeps, block-Jacobi boundary coupling)
// still contracts; the FP16 halo wire stays within its tolerance contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "util/multivector.hpp"

namespace smg {
namespace {

/// Small-hierarchy config with the decomposition threshold lowered so the
/// test grids (13^3 .. 17^3 split 2x2x2 -> >= 216-cell boxes) actually stay
/// decomposed instead of agglomerating at the 512-cell default.
MGConfig decomposed(MGConfig cfg, std::array<int, 3> nb) {
  cfg.min_coarse_cells = 64;
  cfg.decomp = nb;
  cfg.decomp_min_box = 32;
  return cfg;
}

template <class CT>
void expect_bitwise_equal_apply(Problem pa, Problem pb, const MGConfig& base,
                                const char* tag) {
  MGHierarchy ha(std::move(pa.A), decomposed(base, {2, 2, 2}));
  MGHierarchy hb(std::move(pb.A), decomposed(base, {1, 1, 1}));
  MGPrecond<CT> Ma(&ha);
  MGPrecond<CT> Mb(&hb);
  const std::size_t n = static_cast<std::size_t>(ha.level(0).A_full.nrows());
  avec<CT> r(n), ea(n), eb(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = static_cast<CT>(std::sin(0.3 * static_cast<double>(i)));
  }
  Ma.apply({r.data(), n}, {ea.data(), n});
  Mb.apply({r.data(), n}, {eb.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ea[i], eb[i]) << tag << " i=" << i;
  }
}

TEST(DecompEngine, JacobiBitwiseIdenticalAcrossPrecisionConfigs) {
  // Storage-precision axis of the acceptance matrix.
  struct Case {
    const char* name;
    MGConfig cfg;
  };
  for (const Case& tc : {Case{"Full64", config_full64()},
                         Case{"K64P32D32", config_k64p32d32()},
                         Case{"D16-setup-scale", config_d16_setup_scale()},
                         Case{"D16-scale-setup(wrapped)",
                              config_d16_scale_setup()}}) {
    MGConfig cfg = tc.cfg;
    cfg.smoother = SmootherType::Jacobi;
    if (std::string(tc.name) == "Full64") {
      expect_bitwise_equal_apply<double>(make_laplace27(Box{17, 17, 17}),
                                         make_laplace27(Box{17, 17, 17}), cfg,
                                         tc.name);
    } else {
      expect_bitwise_equal_apply<float>(make_laplace27(Box{17, 17, 17}),
                                        make_laplace27(Box{17, 17, 17}), cfg,
                                        tc.name);
    }
  }
}

TEST(DecompEngine, JacobiBitwiseIdenticalAcrossLayouts) {
  for (const Layout lay : {Layout::AOS, Layout::SOA, Layout::SOAL}) {
    MGConfig cfg = config_d16_setup_scale();
    cfg.smoother = SmootherType::Jacobi;
    cfg.layout = lay;
    expect_bitwise_equal_apply<float>(make_laplace27(Box{17, 17, 17}),
                                      make_laplace27(Box{17, 17, 17}), cfg,
                                      "layout");
  }
}

TEST(DecompEngine, JacobiBitwiseIdenticalAcrossStencilsAndBlockSizes) {
  MGConfig cfg = config_full64();
  cfg.smoother = SmootherType::Jacobi;
  // 3d19 stencil (weather), block sizes 3 (rhd3t) and 4 (oil4c).
  expect_bitwise_equal_apply<double>(make_weather(Box{14, 14, 14}),
                                     make_weather(Box{14, 14, 14}), cfg,
                                     "weather-3d19");
  expect_bitwise_equal_apply<double>(make_rhd3t(Box{12, 12, 12}),
                                     make_rhd3t(Box{12, 12, 12}), cfg,
                                     "rhd3t-bs3");
  expect_bitwise_equal_apply<double>(make_oil4c(Box{12, 12, 12}),
                                     make_oil4c(Box{12, 12, 12}), cfg,
                                     "oil4c-bs4");
}

TEST(DecompEngine, JacobiBitwiseIdenticalWithWCycleAndAsymmetricDecomp) {
  MGConfig cfg = config_d16_setup_scale();
  cfg.smoother = SmootherType::Jacobi;
  cfg.cycle = CycleType::W;
  MGHierarchy ha(make_laplace27(Box{17, 17, 13}).A,
                 decomposed(cfg, {2, 2, 1}));
  MGHierarchy hb(make_laplace27(Box{17, 17, 13}).A,
                 decomposed(cfg, {1, 1, 1}));
  MGPrecond<float> Ma(&ha);
  MGPrecond<float> Mb(&hb);
  const std::size_t n = static_cast<std::size_t>(ha.level(0).A_full.nrows());
  avec<float> r(n), ea(n), eb(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = static_cast<float>(std::cos(0.2 * static_cast<double>(i)));
  }
  Ma.apply({r.data(), n}, {ea.data(), n});
  Mb.apply({r.data(), n}, {eb.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ea[i], eb[i]) << "W-cycle i=" << i;
  }
}

TEST(DecompEngine, PcgHistoryIdenticalUnderDeterministicReductions) {
  auto pa = make_laplace27(Box{17, 17, 17});
  auto pb = make_laplace27(Box{17, 17, 17});
  const StructMat<double> A = pa.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.smoother = SmootherType::Jacobi;
  MGHierarchy ha(std::move(pa.A), decomposed(cfg, {2, 2, 2}));
  MGHierarchy hb(std::move(pb.A), decomposed(cfg, {1, 1, 1}));
  auto Ma = make_mg_precond<double>(ha);
  auto Mb = make_mg_precond<double>(hb);
  const std::size_t n = pa.b.size();
  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
  SolveOptions opts;
  opts.max_iters = 40;
  opts.deterministic_reductions = true;
  avec<double> xa(n, 0.0), xb(n, 0.0);
  const auto ra = pcg<double>(op, {pa.b.data(), n}, {xa.data(), n}, *Ma, opts);
  const auto rb = pcg<double>(op, {pb.b.data(), n}, {xb.data(), n}, *Mb, opts);
  EXPECT_TRUE(ra.converged);
  EXPECT_EQ(ra.iters, rb.iters);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i], rb.history[i]) << "iter " << i;
  }
}

TEST(DecompEngine, DecomposedSymGSStillContracts) {
  // Per-box sequential sweeps with block-Jacobi boundary coupling are a
  // legitimately different (weaker) smoother; the cycle must still work.
  auto p = make_laplace27(Box{17, 17, 17});
  const StructMat<double> A = p.A;
  MGHierarchy h(std::move(p.A), decomposed(config_full64(), {2, 2, 2}));
  auto M = make_mg_precond<double>(h);
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  avec<double> x(n, 0.0), b(n, 1.0), r(n), e(n);
  residual<double, double>(A, {b.data(), n}, {x.data(), n}, {r.data(), n});
  const double r0 = nrm2<double>({r.data(), n});
  for (int it = 0; it < 6; ++it) {
    M->apply({r.data(), n}, {e.data(), n});
    axpy<double>(1.0, {e.data(), n}, {x.data(), n});
    residual<double, double>(A, {b.data(), n}, {x.data(), n}, {r.data(), n});
  }
  EXPECT_LT(nrm2<double>({r.data(), n}) / r0, 1e-2);
}

TEST(DecompEngine, Fp16HaloStaysCloseToRawHalo) {
  auto pa = make_laplace27(Box{17, 17, 17});
  auto pb = make_laplace27(Box{17, 17, 17});
  MGConfig raw = decomposed(config_full64(), {2, 2, 2});
  raw.smoother = SmootherType::Jacobi;
  MGConfig fp16 = raw;
  fp16.halo_fp16 = true;
  MGHierarchy ha(std::move(pa.A), raw);
  MGHierarchy hb(std::move(pb.A), fp16);
  MGPrecond<double> Ma(&ha);
  MGPrecond<double> Mb(&hb);
  const std::size_t n = static_cast<std::size_t>(ha.level(0).A_full.nrows());
  avec<double> r(n), ea(n), eb(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = std::sin(0.3 * static_cast<double>(i));
  }
  Ma.apply({r.data(), n}, {ea.data(), n});
  Mb.apply({r.data(), n}, {eb.data(), n});
  // A handful of 2^-11-relative ghost perturbations through one V-cycle:
  // outputs agree to far better than 1% in norm but are NOT bitwise equal.
  double dn = 0.0, an = 0.0;
  bool any_diff = false;
  for (std::size_t i = 0; i < n; ++i) {
    dn += (ea[i] - eb[i]) * (ea[i] - eb[i]);
    an += ea[i] * ea[i];
    any_diff = any_diff || ea[i] != eb[i];
  }
  EXPECT_TRUE(any_diff) << "FP16 wire was never exercised";
  EXPECT_LT(std::sqrt(dn / an), 1e-2);
}

TEST(DecompEngine, ApplyManyMatchesColumnwiseApplies) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = decomposed(config_full64(), {2, 2, 2});
  cfg.smoother = SmootherType::Jacobi;
  MGHierarchy h(std::move(p.A), cfg);
  MGPrecond<double> M(&h);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  const int ncols = 3;
  MultiVector<double> R(static_cast<std::int64_t>(n), ncols);
  MultiVector<double> E(static_cast<std::int64_t>(n), ncols);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < ncols; ++c) {
      R.at(static_cast<std::int64_t>(i), c) =
          std::sin(0.1 * static_cast<double>(i) + c);
    }
  }
  M.apply_many(R, E);
  avec<double> rc(n), ec(n), eref(n);
  for (int c = 0; c < ncols; ++c) {
    R.extract_col(c, {rc.data(), n});
    M.apply({rc.data(), n}, {eref.data(), n});
    E.extract_col(c, {ec.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ec[i], eref[i]) << "col " << c << " i=" << i;
    }
  }
}

TEST(DecompEngine, TinyGridAgglomeratesAndMatchesPlainPath) {
  // With the production 512-cell threshold an 8^3 grid collapses to one box
  // at every level, so requesting a decomposition must change nothing.
  auto pa = make_laplace27(Box{8, 8, 8});
  auto pb = make_laplace27(Box{8, 8, 8});
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGConfig dec = cfg;
  dec.decomp = {2, 2, 2};  // decomp_min_box stays at the 512 default
  MGHierarchy ha(std::move(pa.A), dec);
  MGHierarchy hb(std::move(pb.A), cfg);
  MGPrecond<double> Ma(&ha);
  MGPrecond<double> Mb(&hb);
  const std::size_t n = static_cast<std::size_t>(ha.level(0).A_full.nrows());
  avec<double> r(n, 1.0), ea(n), eb(n);
  Ma.apply({r.data(), n}, {ea.data(), n});
  Mb.apply({r.data(), n}, {eb.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ea[i], eb[i]);
  }
}

TEST(DecompEngine, RefreshLevelKeepsDecomposedPathConsistent) {
  // hierarchy_cache-style reuse: mutate nothing, just force refresh_level
  // and check the decomposed apply is unchanged.
  auto p = make_laplace27(Box{17, 17, 17});
  MGConfig cfg = decomposed(config_full64(), {2, 2, 2});
  cfg.smoother = SmootherType::Jacobi;
  MGHierarchy h(std::move(p.A), cfg);
  MGPrecond<double> M(&h);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  avec<double> r(n, 1.0), e1(n), e2(n);
  M.apply({r.data(), n}, {e1.data(), n});
  for (int l = 0; l < h.nlevels(); ++l) {
    M.refresh_level(l);
  }
  M.apply({r.data(), n}, {e2.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(e1[i], e2[i]);
  }
}

}  // namespace
}  // namespace smg
