// Progressive-precision storage ladder (DESIGN.md §12): per-level rung
// semantics, the deprecated shift_levid alias, the SMG_STORAGE_LADDER env
// override, bitwise equivalence of the all-FP16 ladder with legacy configs,
// and convergence-neutrality of the FP8 coarse rungs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"

namespace smg {
namespace {

LinOp<double> op_of(const StructMat<double>& A) {
  return [&A](std::span<const double> x, std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
}

struct SolveOutcome {
  SolveResult res;
  avec<double> x;
};

SolveOutcome solve_with(const Problem& p, MGConfig cfg, int max_iters = 400) {
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  SolveOutcome out;
  out.x.assign(n, 0.0);
  SolveOptions opts;
  opts.max_iters = max_iters;
  opts.rtol = 1e-8;
  // Fixed reduction order so two runs of the same numerical configuration
  // are bit-reproducible (the bitwise assertions below depend on it).
  opts.deterministic_reductions = true;
  if (p.solver == "cg") {
    out.res = pcg<double>(op_of(p.A), {p.b.data(), n}, {out.x.data(), n}, *M,
                          opts);
  } else {
    out.res = pgmres<double>(op_of(p.A), {p.b.data(), n}, {out.x.data(), n},
                             *M, opts);
  }
  return out;
}

// --- storage_at / expand_ladder semantics ---

TEST(Ladder, StorageAtFollowsTheRungs) {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};
  EXPECT_EQ(cfg.storage_at(0), Prec::FP16);
  EXPECT_EQ(cfg.storage_at(1), Prec::FP16);
  EXPECT_EQ(cfg.storage_at(2), Prec::FP8);
  EXPECT_EQ(cfg.storage_at(7), Prec::FP8);  // last rung extends
  EXPECT_EQ(cfg.storage_at(-1), Prec::FP16);
  const std::vector<Prec> want = {Prec::FP16, Prec::FP16, Prec::FP8,
                                  Prec::FP8, Prec::FP8};
  EXPECT_EQ(cfg.expand_ladder(5), want);
}

TEST(Ladder, DeprecatedShiftLevidAliasExpands) {
  // shift_levid=2 with FP16/FP32 is the ladder {fp16, fp16, fp32}.
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.shift_levid = 2;
  const std::vector<Prec> want = {Prec::FP16, Prec::FP16, Prec::FP32,
                                  Prec::FP32};
  EXPECT_EQ(cfg.expand_ladder(4), want);

  MGConfig ladder = cfg;
  ladder.shift_levid = INT_MAX;
  ladder.storage_ladder = want;
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(ladder.storage_at(l), cfg.storage_at(l)) << "level " << l;
  }

  // shift_levid <= 0 stores everything at compute precision.
  MGConfig all = cfg;
  all.shift_levid = 0;
  EXPECT_EQ(all.storage_at(0), Prec::FP32);
  // An explicit ladder takes precedence over shift_levid.
  MGConfig both = cfg;
  both.storage_ladder = {Prec::BF16};
  both.shift_levid = 0;
  EXPECT_EQ(both.storage_at(3), Prec::BF16);
}

TEST(Ladder, TagListsTheRungs) {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};
  cfg.scale = ScaleMode::SetupThenScale;
  EXPECT_EQ(cfg.tag(), "P32D[16.16.8]-setup-scale");
  cfg.storage_ladder = {Prec::FP32};
  EXPECT_EQ(cfg.tag(), "P32D[32]");  // no narrow rung: no scale suffix
}

// --- SMG_STORAGE_LADDER / SMG_LADDER_MIN_LEVEL environment overrides ---

class LadderEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("SMG_STORAGE_LADDER");
    unsetenv("SMG_LADDER_MIN_LEVEL");
  }
};

TEST_F(LadderEnv, ParsesSeparatorVariants) {
  MGConfig cfg;
  const std::vector<Prec> want = {Prec::FP16, Prec::FP8};
  for (const char* spec : {"fp16,fp8", "fp16 fp8", "fp16:fp8"}) {
    setenv("SMG_STORAGE_LADDER", spec, 1);
    bool auto_rungs = false;
    EXPECT_EQ(effective_storage_ladder(cfg, &auto_rungs), want) << spec;
    EXPECT_FALSE(auto_rungs);
  }
}

TEST_F(LadderEnv, AutoKeywordSetsTheFlag) {
  MGConfig cfg;
  setenv("SMG_STORAGE_LADDER", "auto", 1);
  bool auto_rungs = false;
  EXPECT_TRUE(effective_storage_ladder(cfg, &auto_rungs).empty());
  EXPECT_TRUE(auto_rungs);
}

TEST_F(LadderEnv, UnparseableFallsBackToConfig) {
  MGConfig cfg;
  cfg.storage_ladder = {Prec::BF16};
  setenv("SMG_STORAGE_LADDER", "fp16,fp7", 1);
  bool auto_rungs = false;
  EXPECT_EQ(effective_storage_ladder(cfg, &auto_rungs), cfg.storage_ladder);
  unsetenv("SMG_STORAGE_LADDER");
  EXPECT_EQ(effective_storage_ladder(cfg, nullptr), cfg.storage_ladder);
}

TEST_F(LadderEnv, MinLevelOverride) {
  MGConfig cfg;
  EXPECT_EQ(effective_ladder_min_level(cfg), cfg.ladder_min_level);
  setenv("SMG_LADDER_MIN_LEVEL", "4", 1);
  EXPECT_EQ(effective_ladder_min_level(cfg), 4);
  setenv("SMG_LADDER_MIN_LEVEL", "-3", 1);
  EXPECT_EQ(effective_ladder_min_level(cfg), cfg.ladder_min_level);
}

// --- all-FP16 ladder must reproduce the legacy shift_levid solves bitwise,
// --- across layout x stencil x block size ---

using ProblemLayout = std::pair<std::string, Layout>;

class LadderBitwise : public ::testing::TestWithParam<ProblemLayout> {};

TEST_P(LadderBitwise, AllFp16LadderMatchesLegacy) {
  const auto& [name, layout] = GetParam();
  const Problem p = make_problem(name, Box{12, 12, 10});
  MGConfig legacy = config_d16_setup_scale();
  legacy.layout = layout;
  MGConfig ladder = legacy;
  ladder.storage_ladder = {Prec::FP16};

  const SolveOutcome a = solve_with(p, legacy);
  const SolveOutcome b = solve_with(p, ladder);
  ASSERT_TRUE(a.res.converged) << name;
  EXPECT_EQ(a.res.iters, b.res.iters) << name;
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x[i], b.x[i]) << name << " diverges at dof " << i;
  }
}

TEST_P(LadderBitwise, PartialShiftAliasMatchesLegacy) {
  const auto& [name, layout] = GetParam();
  const Problem p = make_problem(name, Box{12, 12, 10});
  MGConfig legacy = config_d16_setup_scale();
  legacy.layout = layout;
  legacy.shift_levid = 1;
  MGConfig ladder = config_d16_setup_scale();
  ladder.layout = layout;
  ladder.storage_ladder = {Prec::FP16, Prec::FP32};

  const SolveOutcome a = solve_with(p, legacy);
  const SolveOutcome b = solve_with(p, ladder);
  ASSERT_TRUE(a.res.converged) << name;
  EXPECT_EQ(a.res.iters, b.res.iters) << name;
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x[i], b.x[i]) << name << " diverges at dof " << i;
  }
}

// laplace27: 27-point scalar; rhd3t: 7-point, 3x3 blocks; oil: 7-point
// scalar with a hard coefficient span — one problem per layout covers
// layout x stencil x block size without a full cross product.
INSTANTIATE_TEST_SUITE_P(
    LayoutStencilBlock, LadderBitwise,
    ::testing::Values(ProblemLayout{"laplace27", Layout::AOS},
                      ProblemLayout{"rhd3t", Layout::SOA},
                      ProblemLayout{"oil", Layout::SOAL},
                      ProblemLayout{"solid3d", Layout::SOAL}));

// --- FP8 coarse rungs: bytes strictly down, convergence neutral ---

TEST(Ladder, Fp8CoarseRungsAreConvergenceNeutral) {
  for (const char* name : {"laplace27", "rhd"}) {
    const Problem p = make_problem(name, Box{12, 12, 10});
    MGConfig fp16 = config_d16_setup_scale();
    MGConfig fp8 = fp16;
    fp8.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};

    const SolveOutcome a = solve_with(p, fp16);
    const SolveOutcome b = solve_with(p, fp8);
    ASSERT_TRUE(a.res.converged) << name;
    ASSERT_TRUE(b.res.converged) << name;
    EXPECT_LE(std::abs(a.res.iters - b.res.iters), 2) << name;
  }
}

TEST(Ladder, Fp8RungsShrinkStoredBytes) {
  const Problem p = make_problem("laplace27", Box{14, 14, 12});
  MGConfig fp16 = config_d16_setup_scale();
  fp16.min_coarse_cells = 64;
  MGConfig fp8 = fp16;
  fp8.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};

  StructMat<double> a = p.A;
  MGHierarchy h16(std::move(a), fp16);
  StructMat<double> b = p.A;
  MGHierarchy h8(std::move(b), fp8);
  ASSERT_GE(h8.nlevels(), 3);
  EXPECT_LT(h8.stored_matrix_bytes(), h16.stored_matrix_bytes());
  // FP8 levels are always scaled (four-decade range, §4.1 generalized).
  for (int l = 2; l < h8.nlevels(); ++l) {
    EXPECT_EQ(h8.level(l).storage, Prec::FP8);
    EXPECT_TRUE(h8.level(l).scaled) << "level " << l;
  }
}

// --- ladder-mode §4.3 shift keeps storage_at() consistent ---

TEST(Ladder, PlannerShiftRewritesTheLadder) {
  // laplace27e8's coefficients overflow FP16 unscaled; under ScaleMode::None
  // the Auto planner must veto FP16 at level 0, shift the whole hierarchy to
  // compute precision, and rewrite the explicit ladder to match.
  const Problem p = make_problem("laplace27e8", Box{10, 10, 10});
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  cfg.storage_ladder = {Prec::FP16};
  cfg.precision_policy = PrecisionPolicy::Auto;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).storage, Prec::FP32) << "level " << l;
    EXPECT_EQ(h.config().storage_at(l), Prec::FP32) << "level " << l;
  }
  EXPECT_FALSE(h.autopilot_log().empty());
  EXPECT_EQ(h.autopilot_log().front().action, AutopilotAction::Shift);
}

// --- auto-rung planner ---

TEST(Ladder, AutoPlannerPicksFp8OnAdmissibleCoarseLevels) {
  const Problem p = make_problem("laplace27", Box{14, 14, 12});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.precision_policy = PrecisionPolicy::Auto;
  cfg.ladder_auto = true;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  ASSERT_GE(h.nlevels(), 3);
  // The realized ladder is published back into the config.
  ASSERT_EQ(h.config().storage_ladder.size(),
            static_cast<std::size_t>(h.nlevels()));
  bool any_fp8 = false;
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.config().storage_ladder[static_cast<std::size_t>(l)],
              h.level(l).storage);
    if (l < h.config().ladder_min_level) {
      EXPECT_NE(h.level(l).storage, Prec::FP8) << "level " << l;
    }
    any_fp8 = any_fp8 || h.level(l).storage == Prec::FP8;
  }
  // Scaled-and-truncated Poisson coarse operators clear the FP8 headroom.
  EXPECT_TRUE(any_fp8);
  bool logged_rung = false;
  for (const AutopilotDecision& d : h.autopilot_log()) {
    if (d.action == AutopilotAction::Rung) {
      logged_rung = true;
      EXPECT_EQ(d.to, Prec::FP8);
      EXPECT_GE(d.level, h.config().ladder_min_level);
    }
  }
  EXPECT_TRUE(logged_rung);

  // And the planned hierarchy still solves the problem.
  MGConfig solved = cfg;
  const SolveOutcome r = solve_with(p, solved);
  EXPECT_TRUE(r.res.converged);
}

TEST(Ladder, AutoFlagIsInertUnderFixedPolicy) {
  const Problem p = make_problem("laplace27", Box{12, 12, 10});
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.ladder_auto = true;  // policy stays Fixed: must be ignored
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  EXPECT_FALSE(h.config().ladder_auto);
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_EQ(h.level(l).storage, Prec::FP16) << "level " << l;
  }
}

}  // namespace
}  // namespace smg
