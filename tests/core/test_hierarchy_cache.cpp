// Setup/apply split tests: hierarchy fingerprinting and the LRU cache.
#include <gtest/gtest.h>

#include "core/hierarchy_cache.hpp"
#include "problems/problem.hpp"

namespace smg {
namespace {

TEST(HierarchyFingerprint, SensitiveToEverySetupInput) {
  auto p = make_laplace27(Box{8, 8, 8});
  const MGConfig cfg = config_d16_setup_scale();
  const std::uint64_t base = hierarchy_fingerprint(p.A, cfg);
  EXPECT_EQ(base, hierarchy_fingerprint(p.A, cfg));  // deterministic

  // A different box.
  auto p2 = make_laplace27(Box{8, 8, 9});
  EXPECT_NE(hierarchy_fingerprint(p2.A, cfg), base);

  // One perturbed matrix value.
  auto p3 = make_laplace27(Box{8, 8, 8});
  p3.A.data()[0] += 1e-13;
  EXPECT_NE(hierarchy_fingerprint(p3.A, cfg), base);

  // Config fields that change the setup...
  MGConfig c2 = cfg;
  c2.nu1 = 2;
  EXPECT_NE(hierarchy_fingerprint(p.A, c2), base);
  MGConfig c3 = cfg;
  c3.storage = Prec::BF16;
  EXPECT_NE(hierarchy_fingerprint(p.A, c3), base);
  MGConfig c4 = cfg;
  c4.scale_safety *= 2.0;
  EXPECT_NE(hierarchy_fingerprint(p.A, c4), base);
  // ...and fields that "only" change runtime behavior must not alias
  // either (a cached hierarchy carries its config).
  MGConfig c5 = cfg;
  c5.smoother_parallel = SmootherParallel::Sequential;
  EXPECT_NE(hierarchy_fingerprint(p.A, c5), base);
  MGConfig c6 = cfg;
  c6.layout = Layout::AOS;
  EXPECT_NE(hierarchy_fingerprint(p.A, c6), base);
}

TEST(HierarchyCache, HitsReuseTheSameSetup) {
  auto p = make_laplace27(Box{8, 8, 8});
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(4);
  const auto h1 = cache.get_or_build(p.A, cfg);
  const auto h2 = cache.get_or_build(p.A, cfg);
  EXPECT_EQ(h1.get(), h2.get());  // the very same setup, not a rebuild
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(h1->nlevels(), 2);
}

TEST(HierarchyCache, EvictsLeastRecentlyUsed) {
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(2);
  auto pa = make_laplace27(Box{6, 6, 6});
  auto pb = make_laplace27(Box{7, 7, 7});
  auto pc = make_laplace27(Box{8, 8, 8});
  const auto ha = cache.get_or_build(pa.A, cfg);
  const auto hb = cache.get_or_build(pb.A, cfg);
  // Touch A so B becomes the LRU entry, then insert C.
  (void)cache.get_or_build(pa.A, cfg);
  const auto hc = cache.get_or_build(pc.A, cfg);
  EXPECT_EQ(cache.size(), 2u);
  // A is still cached, B was evicted and rebuilds fresh.
  EXPECT_EQ(cache.get_or_build(pa.A, cfg).get(), ha.get());
  EXPECT_NE(cache.get_or_build(pb.A, cfg).get(), hb.get());
}

TEST(HierarchyCache, EvictionHookSeesLruOrderAndMatchesStats) {
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(2);
  auto pa = make_laplace27(Box{6, 6, 6});
  auto pb = make_laplace27(Box{7, 7, 7});
  auto pc = make_laplace27(Box{8, 8, 8});
  auto pd = make_laplace27(Box{9, 9, 9});
  const std::uint64_t ka = hierarchy_fingerprint(pa.A, cfg);
  const std::uint64_t kb = hierarchy_fingerprint(pb.A, cfg);
  const std::uint64_t kc = hierarchy_fingerprint(pc.A, cfg);

  std::vector<std::uint64_t> evicted;
  cache.set_eviction_hook(
      [&evicted](std::uint64_t key) { evicted.push_back(key); });

  (void)cache.get_or_build(pa.A, cfg);
  (void)cache.get_or_build(pb.A, cfg);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch A so B is the LRU victim, then insert C (evicts B) and D
  // (evicts A: C's insert refreshed nothing, A was touched before C).
  (void)cache.get_or_build(pa.A, cfg);
  (void)cache.get_or_build(pc.A, cfg);
  (void)cache.get_or_build(pd.A, cfg);

  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], kb);  // LRU order: B first...
  EXPECT_EQ(evicted[1], ka);  // ...then A
  EXPECT_EQ(cache.evictions(), evicted.size());
  EXPECT_EQ(cache.size(), 2u);

  // The hook may re-enter the cache (it runs after the lock is released).
  cache.set_eviction_hook([&cache, &evicted](std::uint64_t key) {
    evicted.push_back(key);
    EXPECT_EQ(cache.size(), cache.capacity());
  });
  (void)cache.get_or_build(pa.A, cfg);  // evicts C
  ASSERT_EQ(evicted.size(), 3u);
  EXPECT_EQ(evicted[2], kc);
  EXPECT_EQ(cache.evictions(), 3u);

  // Removing the hook stops callbacks but not the eviction counter.
  cache.set_eviction_hook(nullptr);
  (void)cache.get_or_build(pb.A, cfg);  // evicts D
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(cache.evictions(), 4u);
}

TEST(HierarchyCache, CapacityZeroDisablesCaching) {
  auto p = make_laplace27(Box{6, 6, 6});
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(0);
  const auto h1 = cache.get_or_build(p.A, cfg);
  const auto h2 = cache.get_or_build(p.A, cfg);
  EXPECT_NE(h1.get(), h2.get());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(HierarchyCache, ClearDropsEntriesAndCounters) {
  auto p = make_laplace27(Box{6, 6, 6});
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(4);
  (void)cache.get_or_build(p.A, cfg);
  (void)cache.get_or_build(p.A, cfg);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(HierarchyCache, GlobalIsACacheWithDefaultOrEnvCapacity) {
  // The global cache is sized once from SMG_HIERARCHY_CACHE on first use;
  // within one test process we can only assert it exists and behaves like
  // a cache (capacity is whatever the environment said at first touch).
  HierarchyCache& g = HierarchyCache::global();
  EXPECT_EQ(&g, &HierarchyCache::global());
  if (g.capacity() > 0) {
    auto p = make_laplace27(Box{6, 6, 6});
    const MGConfig cfg = config_d16_setup_scale();
    g.clear();
    const auto h1 = g.get_or_build(p.A, cfg);
    const auto h2 = g.get_or_build(p.A, cfg);
    EXPECT_EQ(h1.get(), h2.get());
    g.clear();
  }
}

}  // namespace
}  // namespace smg
