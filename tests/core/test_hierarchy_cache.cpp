// Setup/apply split tests: hierarchy fingerprinting and the LRU cache.
#include <gtest/gtest.h>

#include "core/hierarchy_cache.hpp"
#include "problems/problem.hpp"

namespace smg {
namespace {

TEST(HierarchyFingerprint, SensitiveToEverySetupInput) {
  auto p = make_laplace27(Box{8, 8, 8});
  const MGConfig cfg = config_d16_setup_scale();
  const std::uint64_t base = hierarchy_fingerprint(p.A, cfg);
  EXPECT_EQ(base, hierarchy_fingerprint(p.A, cfg));  // deterministic

  // A different box.
  auto p2 = make_laplace27(Box{8, 8, 9});
  EXPECT_NE(hierarchy_fingerprint(p2.A, cfg), base);

  // One perturbed matrix value.
  auto p3 = make_laplace27(Box{8, 8, 8});
  p3.A.data()[0] += 1e-13;
  EXPECT_NE(hierarchy_fingerprint(p3.A, cfg), base);

  // Config fields that change the setup...
  MGConfig c2 = cfg;
  c2.nu1 = 2;
  EXPECT_NE(hierarchy_fingerprint(p.A, c2), base);
  MGConfig c3 = cfg;
  c3.storage = Prec::BF16;
  EXPECT_NE(hierarchy_fingerprint(p.A, c3), base);
  MGConfig c4 = cfg;
  c4.scale_safety *= 2.0;
  EXPECT_NE(hierarchy_fingerprint(p.A, c4), base);
  // ...and fields that "only" change runtime behavior must not alias
  // either (a cached hierarchy carries its config).
  MGConfig c5 = cfg;
  c5.smoother_parallel = SmootherParallel::Sequential;
  EXPECT_NE(hierarchy_fingerprint(p.A, c5), base);
  MGConfig c6 = cfg;
  c6.layout = Layout::AOS;
  EXPECT_NE(hierarchy_fingerprint(p.A, c6), base);
}

TEST(HierarchyCache, HitsReuseTheSameSetup) {
  auto p = make_laplace27(Box{8, 8, 8});
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(4);
  const auto h1 = cache.get_or_build(p.A, cfg);
  const auto h2 = cache.get_or_build(p.A, cfg);
  EXPECT_EQ(h1.get(), h2.get());  // the very same setup, not a rebuild
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(h1->nlevels(), 2);
}

TEST(HierarchyCache, EvictsLeastRecentlyUsed) {
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(2);
  auto pa = make_laplace27(Box{6, 6, 6});
  auto pb = make_laplace27(Box{7, 7, 7});
  auto pc = make_laplace27(Box{8, 8, 8});
  const auto ha = cache.get_or_build(pa.A, cfg);
  const auto hb = cache.get_or_build(pb.A, cfg);
  // Touch A so B becomes the LRU entry, then insert C.
  (void)cache.get_or_build(pa.A, cfg);
  const auto hc = cache.get_or_build(pc.A, cfg);
  EXPECT_EQ(cache.size(), 2u);
  // A is still cached, B was evicted and rebuilds fresh.
  EXPECT_EQ(cache.get_or_build(pa.A, cfg).get(), ha.get());
  EXPECT_NE(cache.get_or_build(pb.A, cfg).get(), hb.get());
}

TEST(HierarchyCache, CapacityZeroDisablesCaching) {
  auto p = make_laplace27(Box{6, 6, 6});
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(0);
  const auto h1 = cache.get_or_build(p.A, cfg);
  const auto h2 = cache.get_or_build(p.A, cfg);
  EXPECT_NE(h1.get(), h2.get());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(HierarchyCache, ClearDropsEntriesAndCounters) {
  auto p = make_laplace27(Box{6, 6, 6});
  const MGConfig cfg = config_d16_setup_scale();
  HierarchyCache cache(4);
  (void)cache.get_or_build(p.A, cfg);
  (void)cache.get_or_build(p.A, cfg);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(HierarchyCache, GlobalIsACacheWithDefaultOrEnvCapacity) {
  // The global cache is sized once from SMG_HIERARCHY_CACHE on first use;
  // within one test process we can only assert it exists and behaves like
  // a cache (capacity is whatever the environment said at first touch).
  HierarchyCache& g = HierarchyCache::global();
  EXPECT_EQ(&g, &HierarchyCache::global());
  if (g.capacity() > 0) {
    auto p = make_laplace27(Box{6, 6, 6});
    const MGConfig cfg = config_d16_setup_scale();
    g.clear();
    const auto h1 = g.get_or_build(p.A, cfg);
    const auto h2 = g.get_or_build(p.A, cfg);
    EXPECT_EQ(h1.get(), h2.get());
    g.clear();
  }
}

}  // namespace
}  // namespace smg
