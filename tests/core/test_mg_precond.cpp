// V-cycle application tests: error reduction, precision configs, W-cycle,
// wrapped (scale-then-setup) application.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"

namespace smg {
namespace {

/// Relative A-residual reduction of n preconditioner applications used as a
/// stationary iteration on A x = b.
double stationary_reduction(const StructMat<double>& A,
                            PrecondBase<double>& M, int iters) {
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  avec<double> x(n, 0.0), b(n, 1.0), r(n), e(n);
  residual<double, double>(A, {b.data(), n}, {x.data(), n}, {r.data(), n});
  const double r0 = nrm2<double>({r.data(), n});
  for (int it = 0; it < iters; ++it) {
    M.apply({r.data(), n}, {e.data(), n});
    axpy<double>(1.0, {e.data(), n}, {x.data(), n});
    residual<double, double>(A, {b.data(), n}, {x.data(), n}, {r.data(), n});
  }
  return nrm2<double>({r.data(), n}) / r0;
}

MGConfig small(MGConfig cfg) {
  cfg.min_coarse_cells = 64;
  return cfg;
}

TEST(MGPrecond, VCycleContractsPoissonResidual) {
  auto p = make_laplace27(Box{17, 17, 17});
  const StructMat<double> A = p.A;
  MGHierarchy h(std::move(p.A), small(config_full64()));
  auto M = make_mg_precond<double>(h);
  // Multigrid on Poisson: each V-cycle should shave >= ~5x off the residual.
  EXPECT_LT(stationary_reduction(A, *M, 5), 1e-3);
}

class PrecisionConfigs
    : public ::testing::TestWithParam<std::pair<const char*, MGConfig>> {};

TEST_P(PrecisionConfigs, AllSafeConfigsContractLaplace) {
  auto p = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGHierarchy h(std::move(p.A), small(GetParam().second));
  auto M = make_mg_precond<double>(h);
  EXPECT_LT(stationary_reduction(A, *M, 6), 1e-3) << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    Fig6Legend, PrecisionConfigs,
    ::testing::Values(
        std::make_pair("Full64", config_full64()),
        std::make_pair("K64P32D32", config_k64p32d32()),
        std::make_pair("D16-none(inRange)", config_d16_none()),
        std::make_pair("D16-scale-setup", config_d16_scale_setup()),
        std::make_pair("D16-setup-scale", config_d16_setup_scale())));

TEST(MGPrecond, SetupThenScaleHandlesOutOfRangeMatrix) {
  auto p = make_laplace27e8(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGHierarchy h(std::move(p.A), small(config_d16_setup_scale()));
  auto M = make_mg_precond<double>(h);
  const double red = stationary_reduction(A, *M, 6);
  EXPECT_TRUE(std::isfinite(red));
  EXPECT_LT(red, 1e-3);
}

TEST(MGPrecond, NoneModeDivergesOnOutOfRangeMatrix) {
  // Fig. 6(b): without scaling, truncation produces inf and the stationary
  // iteration breaks down with NaN.
  auto p = make_laplace27e8(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGHierarchy h(std::move(p.A), small(config_d16_none()));
  auto M = make_mg_precond<double>(h);
  const double red = stationary_reduction(A, *M, 2);
  EXPECT_FALSE(std::isfinite(red));
}

TEST(MGPrecond, ScaleThenSetupAlsoWorksOnUniformProblem) {
  // For the uniformly scaled laplace27e8 the ablation baseline is fine too
  // (Fig. 6(b): all four scaled curves coincide).
  auto p = make_laplace27e8(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGHierarchy h(std::move(p.A), small(config_d16_scale_setup()));
  auto M = make_mg_precond<double>(h);
  EXPECT_LT(stationary_reduction(A, *M, 6), 1e-3);
}

TEST(MGPrecond, WCycleAtLeastAsStrongAsVCycle) {
  auto pv = make_laplace27(Box{17, 17, 17});
  auto pw = make_laplace27(Box{17, 17, 17});
  const StructMat<double> A = pv.A;
  MGConfig vcfg = small(config_full64());
  MGConfig wcfg = vcfg;
  wcfg.cycle = CycleType::W;
  MGHierarchy hv(std::move(pv.A), vcfg);
  MGHierarchy hw(std::move(pw.A), wcfg);
  auto Mv = make_mg_precond<double>(hv);
  auto Mw = make_mg_precond<double>(hw);
  const double rv = stationary_reduction(A, *Mv, 4);
  const double rw = stationary_reduction(A, *Mw, 4);
  EXPECT_LE(rw, rv * 1.5);
}

TEST(MGPrecond, JacobiSmootherAlsoContracts) {
  auto p = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGConfig cfg = small(config_full64());
  cfg.smoother = SmootherType::Jacobi;
  cfg.nu1 = 2;
  cfg.nu2 = 2;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  EXPECT_LT(stationary_reduction(A, *M, 8), 1e-2);
}

TEST(MGPrecond, MoreSmoothingContractsFasterPerCycle) {
  auto p1 = make_laplace27(Box{13, 13, 13});
  auto p2 = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p1.A;
  MGConfig c1 = small(config_full64());
  MGConfig c2 = c1;
  c2.nu1 = 3;
  c2.nu2 = 3;
  MGHierarchy h1(std::move(p1.A), c1);
  MGHierarchy h2(std::move(p2.A), c2);
  auto M1 = make_mg_precond<double>(h1);
  auto M2 = make_mg_precond<double>(h2);
  EXPECT_LE(stationary_reduction(A, *M2, 4),
            stationary_reduction(A, *M1, 4) * 1.1);
}

TEST(MGPrecond, AdapterTimingAccumulates) {
  auto p = make_laplace27(Box{13, 13, 13});
  MGHierarchy h(std::move(p.A), small(config_full64()));
  auto M = make_mg_precond<double>(h);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  avec<double> r(n, 1.0), e(n);
  M->apply({r.data(), n}, {e.data(), n});
  EXPECT_GT(M->apply_seconds(), 0.0);
  M->reset_timing();
  EXPECT_EQ(M->apply_seconds(), 0.0);
}

TEST(MGPrecond, FusedAndUnfusedDownstrokesBitwiseIdentical) {
  // The fused residual_restrict performs the same arithmetic as residual()
  // followed by restrict_to_coarse(), so flipping fused_transfers must not
  // change a single bit of the preconditioner output — which also makes the
  // fused/unfused solver convergence histories identical by construction.
  struct Case {
    const char* name;
    MGConfig cfg;
  };
  MGConfig jac = config_full64();
  jac.smoother = SmootherType::Jacobi;
  MGConfig wcyc = config_d16_setup_scale();
  wcyc.cycle = CycleType::W;
  for (const Case& tc :
       {Case{"Full64", config_full64()},
        Case{"D16-setup-scale", config_d16_setup_scale()},
        Case{"D16-scale-setup(wrapped)", config_d16_scale_setup()},
        Case{"Full64-Jacobi", jac}, Case{"D16-W-cycle", wcyc}}) {
    auto pa = make_laplace27(Box{13, 13, 13});
    auto pb = make_laplace27(Box{13, 13, 13});
    MGConfig on = small(tc.cfg);
    MGConfig off = on;
    on.fused_transfers = FusedTransfers::On;
    off.fused_transfers = FusedTransfers::Off;
    MGHierarchy ha(std::move(pa.A), on);
    MGHierarchy hb(std::move(pb.A), off);
    MGPrecond<float> Ma(&ha);
    MGPrecond<float> Mb(&hb);
    const std::size_t n =
        static_cast<std::size_t>(ha.level(0).A_full.nrows());
    avec<float> r(n), ea(n), eb(n);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = static_cast<float>(std::sin(0.3 * static_cast<double>(i)));
    }
    Ma.apply({r.data(), n}, {ea.data(), n});
    Mb.apply({r.data(), n}, {eb.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ea[i], eb[i]) << tc.name << " i=" << i;
    }
  }
}

TEST(MGPrecond, ApplyIsDeterministic) {
  auto p = make_rhd(Box{10, 10, 10});
  MGHierarchy h(std::move(p.A), small(config_d16_setup_scale()));
  MGPrecond<float> mg(&h);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  avec<float> r(n), e1(n), e2(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)));
  }
  mg.apply({r.data(), n}, {e1.data(), n});
  mg.apply({r.data(), n}, {e2.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(e1[i], e2[i]);
  }
}

}  // namespace
}  // namespace smg
