// Dense LU coarse solver tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dense_lu.hpp"
#include "kernels/spmv.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

TEST(DenseLU, SolvesSmallExplicitSystem) {
  // A = [[2,1],[1,3]], b = [3,5] -> x = [4/5, 7/5].
  avec<double> a = {2, 1, 1, 3};
  DenseLU lu(2, std::move(a));
  avec<double> b = {3, 5}, x(2);
  lu.solve<double>({b.data(), 2}, {x.data(), 2});
  EXPECT_NEAR(x[0], 0.8, 1e-14);
  EXPECT_NEAR(x[1], 1.4, 1e-14);
}

TEST(DenseLU, PivotingHandlesZeroLeadingEntry) {
  avec<double> a = {0, 1, 1, 0};  // permutation matrix
  DenseLU lu(2, std::move(a));
  avec<double> b = {7, 9}, x(2);
  lu.solve<double>({b.data(), 2}, {x.data(), 2});
  EXPECT_NEAR(x[0], 9.0, 1e-14);
  EXPECT_NEAR(x[1], 7.0, 1e-14);
  EXPECT_GT(lu.min_pivot(), 0.5);
}

TEST(DenseLU, RandomSystemResidualIsTiny) {
  const std::int64_t n = 50;
  Rng rng(123);
  avec<double> a(static_cast<std::size_t>(n * n));
  for (auto& v : a) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i * n + i)] += 10.0;  // keep well-conditioned
  }
  const avec<double> acopy = a;
  DenseLU lu(n, std::move(a));
  avec<double> b(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n));
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  lu.solve<double>({b.data(), b.size()}, {x.data(), x.size()});
  for (std::int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      acc += acopy[static_cast<std::size_t>(i * n + j)]
             * x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(acc, b[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST(DenseLU, FactorsStructuredMatrix) {
  const Box box{4, 3, 3};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 2, Layout::SOA);
  Rng rng(7);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      for (int br = 0; br < 2; ++br) {
        for (int bc = 0; bc < 2; ++bc) {
          A.at(cell, d, br, bc) = (d == center && br == bc)
                                      ? 20.0
                                      : rng.uniform(-1.0, 1.0);
        }
      }
    }
  }
  A.clear_out_of_box();

  DenseLU lu(A);
  EXPECT_EQ(lu.size(), A.nrows());
  avec<double> b(static_cast<std::size_t>(A.nrows()));
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  avec<double> x(b.size());
  lu.solve<double>({b.data(), b.size()}, {x.data(), x.size()});
  avec<double> ax(b.size());
  spmv<double, double>(A, {x.data(), x.size()}, {ax.data(), ax.size()});
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-11);
  }
}

TEST(DenseLU, FloatInterfaceRoundTrips) {
  avec<double> a = {4, 1, 1, 3};
  DenseLU lu(2, std::move(a));
  avec<float> b = {5, 4}, x(2);
  lu.solve<float>({b.data(), 2}, {x.data(), 2});
  EXPECT_NEAR(4.0 * x[0] + x[1], 5.0, 1e-5);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 4.0, 1e-5);
}

TEST(DenseLU, SingularMatrixReportsZeroPivot) {
  avec<double> a = {1, 2, 2, 4};  // rank 1
  DenseLU lu(2, std::move(a));
  EXPECT_LT(lu.min_pivot(), 1e-12);
}

}  // namespace
}  // namespace smg
