// CSR baseline tests: assembly from SG-DIA, SpMV, triangular solve, bytes.
#include <gtest/gtest.h>

#include <cmath>

#include "csr/csr_matrix.hpp"
#include "kernels/spmv.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

StructMat<double> random_matrix(const Box& box, Pattern p, int bs,
                                std::uint64_t seed = 7) {
  StructMat<double> A(box, Stencil::make(p), bs, Layout::SOA);
  Rng rng(seed);
  for (auto& v : A.values()) {
    v = rng.uniform(-1.0, 1.0);
  }
  A.clear_out_of_box();
  return A;
}

TEST(Csr, AssemblyCountsMatchStructured) {
  const Box box{5, 4, 3};
  auto A = random_matrix(box, Pattern::P3d19, 1);
  const auto C = csr_from_struct<double>(A);
  EXPECT_EQ(C.nrows(), A.nrows());
  EXPECT_EQ(C.nnz(), A.nnz_logical());
}

TEST(Csr, ColumnsAscendingPerRow) {
  auto A = random_matrix(Box{4, 4, 4}, Pattern::P3d27, 2);
  const auto C = csr_from_struct<double>(A);
  const auto rp = C.row_ptr();
  const auto ci = C.col_idx();
  for (std::int64_t r = 0; r < C.nrows(); ++r) {
    for (auto p = rp[r] + 1; p < rp[r + 1]; ++p) {
      EXPECT_LT(ci[p - 1], ci[p]) << "row " << r;
    }
  }
}

TEST(Csr, SpmvMatchesStructured) {
  for (int bs : {1, 3}) {
    const Box box{6, 5, 4};
    auto A = random_matrix(box, Pattern::P3d7, bs);
    const auto C = csr_from_struct<double>(A);
    Rng rng(5);
    avec<double> x(static_cast<std::size_t>(A.nrows()));
    for (auto& v : x) {
      v = rng.uniform(-1.0, 1.0);
    }
    avec<double> y1(x.size()), y2(x.size());
    spmv<double, double>(A, {x.data(), x.size()}, {y1.data(), y1.size()});
    C.spmv<double>({x.data(), x.size()}, {y2.data(), y2.size()});
    for (std::size_t i = 0; i < y1.size(); ++i) {
      EXPECT_NEAR(y1[i], y2[i], 1e-12);
    }
  }
}

TEST(Csr, MixedPrecisionSpmv) {
  const Box box{6, 6, 6};
  auto A = random_matrix(box, Pattern::P3d7, 1);
  const auto Cd = csr_from_struct<double>(A);
  const auto Ch = csr_from_struct<half>(A);
  Rng rng(15);
  avec<float> x(static_cast<std::size_t>(A.nrows()));
  for (auto& v : x) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  avec<float> yd(x.size()), yh(x.size());
  Cd.spmv<float>({x.data(), x.size()}, {yd.data(), yd.size()});
  Ch.spmv<float>({x.data(), x.size()}, {yh.data(), yh.size()});
  for (std::size_t i = 0; i < yd.size(); ++i) {
    EXPECT_NEAR(yh[i], yd[i], 7.0 * 1e-3 + 1e-5);
  }
}

TEST(Csr, LowerTriangularSolve) {
  // Diagonally dominant lower-triangular structured matrix -> CSR -> solve.
  const Box box{5, 4, 4};
  StructMat<double> L(box, Stencil::make(Pattern::P3d4), 1, Layout::SOA);
  Rng rng(25);
  const int center = L.stencil().center();
  for (std::int64_t cell = 0; cell < L.ncells(); ++cell) {
    for (int d = 0; d < L.ndiag(); ++d) {
      L.at(cell, d) = d == center ? rng.uniform(8.0, 10.0)
                                  : rng.uniform(-1.0, 1.0);
    }
  }
  L.clear_out_of_box();
  const auto C = csr_from_struct<double>(L);

  avec<double> b(static_cast<std::size_t>(L.nrows()));
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  avec<double> x(b.size());
  C.sptrsv_lower<double>({b.data(), b.size()}, {x.data(), x.size()});
  // Verify L x = b.
  avec<double> lx(b.size());
  C.spmv<double>({x.data(), x.size()}, {lx.data(), lx.size()});
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(lx[i], b[i], 1e-11);
  }
}

TEST(Csr, BytesAccountingMatchesTable2Model) {
  const Box box{8, 8, 8};
  auto A = random_matrix(box, Pattern::P3d7, 1);
  const auto C32 = csr_from_struct<float, std::int32_t>(A);
  const std::size_t nnz = static_cast<std::size_t>(C32.nnz());
  const std::size_t expected = nnz * (4 + 4) + (512 + 1) * 4;
  EXPECT_EQ(C32.bytes(), expected);

  const auto C64 = csr_from_struct<double, std::int64_t>(A);
  EXPECT_EQ(C64.bytes(), nnz * (8 + 8) + (512 + 1) * 8);
}

TEST(Csr, BytesPerNnzFormula) {
  // Table 2: fp64/int32 -> 12 + 4*delta.
  EXPECT_DOUBLE_EQ(csr_bytes_per_nnz(8, 4, 0.15), 8 + 4 * 1.15);
  EXPECT_DOUBLE_EQ(csr_bytes_per_nnz(2, 4, 0.0), 6.0);
}

}  // namespace
}  // namespace smg
