// Tests for the SG-DIA structured matrix container.
#include <gtest/gtest.h>

#include "sgdia/any_matrix.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

StructMat<double> random_matrix(const Box& box, Pattern p, int bs,
                                Layout layout, double scale = 1.0) {
  StructMat<double> A(box, Stencil::make(p), bs, layout);
  Rng rng(42);
  for (auto& v : A.values()) {
    v = rng.uniform(-1.0, 1.0) * scale;
  }
  A.clear_out_of_box();
  return A;
}

TEST(StructMat, DimensionsAndCounts) {
  const Box box{5, 4, 3};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 2);
  EXPECT_EQ(A.ncells(), 60);
  EXPECT_EQ(A.nrows(), 120);
  EXPECT_EQ(A.ndiag(), 7);
  EXPECT_EQ(A.values().size(), 60u * 7u * 4u);
}

TEST(StructMat, NnzLogicalExcludesBoundaryTruncation) {
  const Box box{4, 4, 4};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1);
  // center: 64; each face offset: 4*4*3 = 48; six of them.
  EXPECT_EQ(A.nnz_logical(), 64 + 6 * 48);
}

TEST(StructMat, AosSoaIndexDiffer) {
  const Box box{3, 3, 3};
  StructMat<float> aos(box, Stencil::make(Pattern::P3d7), 1, Layout::AOS);
  StructMat<float> soa(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  // AOS: consecutive diags of one cell adjacent; SOA: consecutive cells of
  // one diag adjacent.
  EXPECT_EQ(aos.block_index(0, 1) - aos.block_index(0, 0), 1);
  EXPECT_EQ(soa.block_index(1, 0) - soa.block_index(0, 0), 1);
  EXPECT_EQ(soa.block_index(0, 1) - soa.block_index(0, 0), 27);
}

TEST(StructMat, BlockIndexingRowMajor) {
  const Box box{2, 2, 2};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 3, Layout::SOA);
  A.at(1, 2, 1, 2) = 7.5;
  EXPECT_EQ(A.at(1, 2, 1, 2), 7.5);
  const std::int64_t base = A.block_index(1, 2);
  EXPECT_EQ(A.values()[static_cast<std::size_t>(base + 1 * 3 + 2)], 7.5);
}

TEST(StructMat, OutOfBoxInvariant) {
  auto A = random_matrix(Box{4, 4, 4}, Pattern::P3d27, 1, Layout::SOA);
  EXPECT_TRUE(A.out_of_box_clear());
  // Violate and repair.
  const Stencil& st = A.stencil();
  const int d = st.find(-1, -1, -1);
  A.at(0, 0, 0, d) = 1.0;  // neighbor (-1,-1,-1) is outside
  EXPECT_FALSE(A.out_of_box_clear());
  A.clear_out_of_box();
  EXPECT_TRUE(A.out_of_box_clear());
}

class ConvertParam
    : public ::testing::TestWithParam<std::tuple<Layout, Layout, int>> {};

TEST_P(ConvertParam, LayoutAndPrecisionConversionPreservesValues) {
  const auto [from, to, bs] = GetParam();
  const Box box{5, 3, 4};
  auto A = random_matrix(box, Pattern::P3d19, bs, from, 100.0);

  // double -> float -> compare entrywise through the accessor (layout
  // change must not permute logical entries).
  TruncateReport rep;
  auto B = convert<float>(A, to, &rep);
  EXPECT_EQ(rep.overflowed, 0u);
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      for (int br = 0; br < bs; ++br) {
        for (int bc = 0; bc < bs; ++bc) {
          EXPECT_FLOAT_EQ(B.at(cell, d, br, bc),
                          static_cast<float>(A.at(cell, d, br, bc)));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, ConvertParam,
    ::testing::Combine(
        ::testing::Values(Layout::AOS, Layout::SOA, Layout::SOAL),
        ::testing::Values(Layout::AOS, Layout::SOA, Layout::SOAL),
        ::testing::Values(1, 3)));

TEST(StructMat, SoalLayoutIndexing) {
  const Box box{4, 3, 2};
  StructMat<float> m(box, Stencil::make(Pattern::P3d7), 1, Layout::SOAL);
  // Within a line, consecutive cells of one diagonal are adjacent; the next
  // diagonal of the same line follows after nx entries.
  EXPECT_EQ(m.block_index(1, 0) - m.block_index(0, 0), 1);
  EXPECT_EQ(m.block_index(0, 1) - m.block_index(0, 0), 4);
  // The next line starts after ndiag * nx entries.
  EXPECT_EQ(m.block_index(4, 0) - m.block_index(0, 0), 7 * 4);
}

TEST(StructMatConvert, HalfTruncationReportsOverflow) {
  auto A = random_matrix(Box{4, 4, 4}, Pattern::P3d7, 1, Layout::SOA, 1e6);
  TruncateReport rep;
  auto H = convert<half>(A, Layout::SOA, &rep);
  EXPECT_GT(rep.overflowed, 0u);
}

TEST(StructMatConvert, RoundTripDoubleHalfDouble) {
  auto A = random_matrix(Box{3, 3, 3}, Pattern::P3d7, 1, Layout::SOA, 10.0);
  auto H = convert<half>(A, Layout::SOA);
  auto D = convert<double>(H, Layout::SOA);
  // Relative error bounded by half epsilon.
  for (std::size_t i = 0; i < A.values().size(); ++i) {
    const double orig = A.values()[i];
    const double back = D.values()[i];
    EXPECT_NEAR(back, orig, std::abs(orig) * 1e-3 + 1e-7);
  }
}

TEST(AnyMat, DispatchesPrecisionAndMetadata) {
  auto A = random_matrix(Box{4, 3, 2}, Pattern::P3d7, 2, Layout::SOA, 5.0);
  for (Prec p : {Prec::FP64, Prec::FP32, Prec::FP16, Prec::BF16}) {
    const AnyMat m = AnyMat::from(A, p, Layout::SOA);
    EXPECT_EQ(m.precision(), p);
    EXPECT_EQ(m.block_size(), 2);
    EXPECT_EQ(m.ncells(), 24);
    EXPECT_EQ(m.nrows(), 48);
    EXPECT_EQ(m.value_bytes(),
              static_cast<std::size_t>(24 * 7 * 4) * bytes_of(p));
  }
}

TEST(AnyMat, ValueBytesHalveWithPrecision) {
  auto A = random_matrix(Box{8, 8, 8}, Pattern::P3d27, 1, Layout::SOA);
  const auto b64 = AnyMat::from(A, Prec::FP64, Layout::SOA).value_bytes();
  const auto b32 = AnyMat::from(A, Prec::FP32, Layout::SOA).value_bytes();
  const auto b16 = AnyMat::from(A, Prec::FP16, Layout::SOA).value_bytes();
  EXPECT_EQ(b64, 2 * b32);
  EXPECT_EQ(b32, 2 * b16);
}

}  // namespace
}  // namespace smg
