// bench_compare verdict logic over fabricated smg-bench-v1 documents:
// the injected-regression case, same-baseline noise, noise widening,
// missing gated metrics, drift gating, and exit-code policy.
#include "harness/compare.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace smg::bench {
namespace {

/// Build a one-bench document through the real emitter so the tests also
/// exercise make_document/validate_bench_document.
obs::JsonValue make_doc(const std::vector<MetricResult>& metrics,
                        bool ok = true) {
  RunOptions opts;
  opts.stream_n = 0;  // no STREAM probe in unit tests
  BenchRun run;
  run.name = "synthetic";
  run.paper_ref = "test";
  run.ok = ok;
  if (!ok) {
    run.failures.push_back("injected failure");
  }
  run.metrics = metrics;
  obs::JsonValue env = capture_environment(opts);
  return make_document("smoke", opts, env, {run});
}

MetricResult timed_metric(const std::string& name, std::vector<double> xs,
                          bool gate) {
  MetricResult m;
  m.name = name;
  m.unit = "s";
  m.better = Better::Lower;
  m.timed = true;
  m.gate = gate;
  m.samples = std::move(xs);
  return m;
}

MetricResult value_metric(const std::string& name, double v, Better better,
                          bool gate) {
  MetricResult m;
  m.name = name;
  m.unit = "x";
  m.better = better;
  m.timed = false;
  m.gate = gate;
  m.samples = {v};
  return m;
}

std::vector<double> scaled(const std::vector<double>& xs, double f) {
  std::vector<double> out;
  for (double x : xs) {
    out.push_back(x * f);
  }
  return out;
}

const std::vector<double> kBase = {0.100, 0.101, 0.102, 0.103, 0.104};

TEST(BenchCompare, EmittedDocumentsAreSchemaValid) {
  const auto doc = make_doc({timed_metric("t", kBase, true)});
  EXPECT_TRUE(validate_bench_document(doc).empty());
}

TEST(BenchCompare, IdenticalDocumentsPass) {
  const auto base = make_doc({timed_metric("t", kBase, true),
                              value_metric("iters", 42.0, Better::Lower,
                                           true)});
  const CompareResult r = compare_documents(base, base, {});
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.regressions, 0);
  EXPECT_FALSE(has_failures(r));
}

TEST(BenchCompare, TwentyPercentSlowdownOnGatedTimedMetricFails) {
  // The acceptance case: a synthetic 20% slowdown must exit nonzero while
  // the 10% timed tolerance passes re-run noise of the same baseline.
  const auto base = make_doc({timed_metric("t", kBase, true)});
  const auto cand = make_doc({timed_metric("t", scaled(kBase, 1.20), true)});
  const CompareResult r = compare_documents(base, cand, {});
  ASSERT_EQ(r.regressions, 1);
  EXPECT_TRUE(has_failures(r));
  ASSERT_FALSE(r.deltas.empty());
  EXPECT_EQ(r.deltas[0].verdict, Verdict::Regressed);
  EXPECT_NEAR(r.deltas[0].rel_delta, 0.20, 1e-9);
}

TEST(BenchCompare, SmallJitterWithinTimeTolerancePasses) {
  const auto base = make_doc({timed_metric("t", kBase, true)});
  const auto cand = make_doc({timed_metric("t", scaled(kBase, 1.05), true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0);
  EXPECT_FALSE(has_failures(r));
}

TEST(BenchCompare, NoisyMetricWidensTolerance) {
  // Base jitters ~25% run-to-run (rel IQR ~0.25): eff_tol = 4 * 0.25 = 1.0,
  // so even a 40% median move must NOT regress.
  const std::vector<double> noisy = {0.080, 0.095, 0.100, 0.105, 0.120};
  const auto base = make_doc({timed_metric("t", noisy, true)});
  const auto cand = make_doc({timed_metric("t", scaled(noisy, 1.40), true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0) << "noise-widened tolerance must absorb this";
}

TEST(BenchCompare, SubMicrosecondTimedDeltaIgnored) {
  // 20% relative but 2µs absolute: below the min_abs_s clock-jitter floor.
  const std::vector<double> tiny = {1.0e-5, 1.0e-5, 1.1e-5, 1.0e-5};
  const auto base = make_doc({timed_metric("t", tiny, true)});
  const auto cand = make_doc({timed_metric("t", scaled(tiny, 1.2), true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0);
}

TEST(BenchCompare, NoGateTimeExemptsTimedMetrics) {
  const auto base = make_doc({timed_metric("t", kBase, true)});
  const auto cand = make_doc({timed_metric("t", scaled(kBase, 1.5), true)});
  CompareOptions opts;
  opts.gate_time = false;
  const CompareResult r = compare_documents(base, cand, opts);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_FALSE(has_failures(r));
}

TEST(BenchCompare, UngatedRegressionDoesNotFailExitCode) {
  const auto base = make_doc({timed_metric("t", kBase, false)});
  const auto cand = make_doc({timed_metric("t", scaled(kBase, 1.5), false)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0);
  ASSERT_FALSE(r.deltas.empty());
  EXPECT_EQ(r.deltas[0].verdict, Verdict::Regressed);  // reported, not gated
  EXPECT_FALSE(r.deltas[0].gated);
  EXPECT_FALSE(has_failures(r));
}

TEST(BenchCompare, GateAllPromotesUngatedMetrics) {
  const auto base = make_doc({timed_metric("t", kBase, false)});
  const auto cand = make_doc({timed_metric("t", scaled(kBase, 1.5), false)});
  CompareOptions opts;
  opts.gate_all = true;
  const CompareResult r = compare_documents(base, cand, opts);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_TRUE(has_failures(r));
}

TEST(BenchCompare, GatedIterationIncreaseFails) {
  const auto base = make_doc({value_metric("iters", 40.0, Better::Lower,
                                           true)});
  const auto cand = make_doc({value_metric("iters", 44.0, Better::Lower,
                                           true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 1);
}

TEST(BenchCompare, HigherIsBetterDropFails) {
  const auto base = make_doc({value_metric("pct", 99.0, Better::Higher,
                                           true)});
  const auto cand = make_doc({value_metric("pct", 80.0, Better::Higher,
                                           true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 1);
}

TEST(BenchCompare, HigherIsBetterGainIsImprovement) {
  const auto base = make_doc({value_metric("pct", 80.0, Better::Higher,
                                           true)});
  const auto cand = make_doc({value_metric("pct", 99.0, Better::Higher,
                                           true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.improvements, 1);
}

TEST(BenchCompare, GatedDirectionlessMetricFailsOnDriftEitherWay) {
  const auto base = make_doc({value_metric("model_mb", 100.0, Better::None,
                                           true)});
  const auto up = make_doc({value_metric("model_mb", 110.0, Better::None,
                                         true)});
  const auto down = make_doc({value_metric("model_mb", 90.0, Better::None,
                                           true)});
  EXPECT_EQ(compare_documents(base, up, {}).regressions, 1);
  EXPECT_EQ(compare_documents(base, down, {}).regressions, 1);
  EXPECT_EQ(compare_documents(base, base, {}).regressions, 0);
}

TEST(BenchCompare, UngatedDirectionlessMetricIsInfoOnly) {
  const auto base = make_doc({value_metric("note", 100.0, Better::None,
                                           false)});
  const auto cand = make_doc({value_metric("note", 500.0, Better::None,
                                           false)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0);
  ASSERT_FALSE(r.deltas.empty());
  EXPECT_EQ(r.deltas[0].verdict, Verdict::Info);
}

TEST(BenchCompare, MissingGatedMetricIsRegression) {
  const auto base = make_doc({value_metric("iters", 40.0, Better::Lower,
                                           true)});
  const auto cand = make_doc({value_metric("other", 1.0, Better::Lower,
                                           false)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 1);
  EXPECT_TRUE(has_failures(r));
}

TEST(BenchCompare, NewMetricIsReportedNotGated) {
  const auto base = make_doc({value_metric("a", 1.0, Better::Lower, true)});
  const auto cand = make_doc({value_metric("a", 1.0, Better::Lower, true),
                              value_metric("b", 2.0, Better::Lower, true)});
  const CompareResult r = compare_documents(base, cand, {});
  EXPECT_EQ(r.regressions, 0);
  bool saw_new = false;
  for (const MetricDelta& d : r.deltas) {
    saw_new = saw_new || d.verdict == Verdict::New;
  }
  EXPECT_TRUE(saw_new);
}

TEST(BenchCompare, NewlyFailingBenchFailsComparison) {
  const auto base = make_doc({value_metric("a", 1.0, Better::Lower, true)},
                             /*ok=*/true);
  const auto cand = make_doc({value_metric("a", 1.0, Better::Lower, true)},
                             /*ok=*/false);
  const CompareResult r = compare_documents(base, cand, {});
  ASSERT_EQ(r.broke.size(), 1u);
  EXPECT_EQ(r.broke[0], "synthetic");
  EXPECT_TRUE(has_failures(r));
}

TEST(BenchCompare, InvalidDocumentReportsSchemaErrors) {
  obs::JsonValue junk = obs::JsonValue::object();
  junk.set("schema", obs::JsonValue(std::string("not-a-schema")));
  const auto base = make_doc({value_metric("a", 1.0, Better::Lower, true)});
  const CompareResult r = compare_documents(junk, base, {});
  EXPECT_FALSE(r.errors.empty());
  EXPECT_TRUE(has_failures(r));
}

TEST(BenchCompare, MarkdownListsRegressionAndGateFootnote) {
  const auto base = make_doc({timed_metric("t", kBase, true)});
  const auto cand = make_doc({timed_metric("t", scaled(kBase, 1.3), true)});
  const std::string md =
      to_markdown(compare_documents(base, cand, {}));
  EXPECT_NE(md.find("REGRESSED"), std::string::npos);
  EXPECT_NE(md.find("1 regression(s)"), std::string::npos);
  EXPECT_NE(md.find("| synthetic | t"), std::string::npos);
}

}  // namespace
}  // namespace smg::bench
