// Harness statistics: quartiles, Tukey-fence outlier rejection, and the
// relative-IQR noise estimate bench_compare widens its tolerances with.
#include "harness/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smg::bench {
namespace {

TEST(HarnessStats, EmptyInputIsZeroStruct) {
  const SampleStats s = compute_stats({});
  EXPECT_EQ(s.n, 0);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.iqr, 0.0);
}

TEST(HarnessStats, SingleSample) {
  const std::vector<double> xs = {3.5};
  const SampleStats s = compute_stats({xs.data(), xs.size()});
  EXPECT_EQ(s.n, 1);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.iqr, 0.0);
}

TEST(HarnessStats, OddCountMedianAndQuartiles) {
  // Sorted: 1 2 3 4 5; rank interpolation gives q1 = 2, q3 = 4.
  const std::vector<double> xs = {5.0, 3.0, 1.0, 4.0, 2.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()});
  EXPECT_EQ(s.n, 5);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.iqr, 2.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(HarnessStats, EvenCountInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(HarnessStats, RejectsFarOutlierWithClassicFence) {
  // 10 tight samples around 1.0 plus one 10x outlier: the fences
  // [q1 - 1.5*iqr, q3 + 1.5*iqr] exclude it; min/max/mean come from the
  // survivors while the quartiles stay the raw-sample ones.
  std::vector<double> xs = {0.98, 0.99, 1.00, 1.00, 1.01,
                            1.01, 1.02, 1.02, 1.03, 10.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()}, 1.5);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.n, 9);
  EXPECT_LE(s.max, 1.03);
  EXPECT_LT(s.mean, 1.1);
  EXPECT_NEAR(s.median, 1.01, 1e-12);
}

TEST(HarnessStats, NoRejectionBelowFourSamples) {
  // Three samples, one wild: quartiles are meaningless, keep everything.
  const std::vector<double> xs = {1.0, 1.0, 100.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()}, 1.5);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.n, 3);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(HarnessStats, ZeroKDisablesRejection) {
  std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0, 50.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()}, 0.0);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.n, 6);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
}

TEST(HarnessStats, ZeroIqrRejectsNothingFromConstantSamples) {
  const std::vector<double> xs = {2.0, 2.0, 2.0, 2.0, 2.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()}, 1.5);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.iqr, 0.0);
}

TEST(HarnessStats, RelativeIqrIsNoiseOverMedian) {
  const std::vector<double> xs = {0.9, 1.0, 1.0, 1.1};
  const SampleStats s = compute_stats({xs.data(), xs.size()});
  EXPECT_GT(relative_iqr(s), 0.0);
  EXPECT_NEAR(relative_iqr(s), s.iqr / s.median, 1e-15);
}

TEST(HarnessStats, RelativeIqrZeroBelowFourSamples) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()});
  EXPECT_DOUBLE_EQ(relative_iqr(s), 0.0);
}

TEST(HarnessStats, RelativeIqrZeroWhenMedianZero) {
  const std::vector<double> xs = {-1.0, 0.0, 0.0, 1.0};
  const SampleStats s = compute_stats({xs.data(), xs.size()});
  EXPECT_DOUBLE_EQ(relative_iqr(s), 0.0);
}

}  // namespace
}  // namespace smg::bench
