// Round-trip between the schema documentation and the emitters.
//
// docs/BENCH_SCHEMA.md and docs/TELEMETRY_SCHEMA.md promise (in their
// "Doc convention" note) that every table row whose first cell is a
// single backticked lowercase identifier documents exactly one JSON key.
// This test parses those rows and asserts the documented key set equals
// the key set the emitters actually produce — in both directions, so a
// field added to the code without documentation fails just like a
// documented field the code stopped emitting.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/autopilot.hpp"
#include "core/config.hpp"
#include "harness/harness.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace smg {
namespace {

#ifndef SMG_SOURCE_DIR
#error "tests/CMakeLists.txt must define SMG_SOURCE_DIR"
#endif

std::string read_doc(const std::string& rel) {
  const std::string path = std::string(SMG_SOURCE_DIR) + "/" + rel;
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool is_identifier(const std::string& s) {
  if (s.empty() || !(std::islower(static_cast<unsigned char>(s[0])) != 0)) {
    return false;
  }
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

/// Every `| \`key\` |`-style table row in the markdown text.
std::set<std::string> documented_keys(const std::string& text) {
  std::set<std::string> keys;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) != 0) {
      continue;
    }
    const std::size_t close = line.find('`', 3);
    if (close == std::string::npos) {
      continue;
    }
    const std::string key = line.substr(3, close - 3);
    if (is_identifier(key)) {
      keys.insert(key);
    }
  }
  return keys;
}

/// All object keys anywhere in a JSON value tree.
void collect_keys(const obs::JsonValue& v, std::set<std::string>& out) {
  for (const auto& [key, member] : v.members()) {
    out.insert(key);
    collect_keys(member, out);
  }
  for (const obs::JsonValue& item : v.items()) {
    collect_keys(item, out);
  }
}

void expect_same_keys(const std::set<std::string>& documented,
                      const std::set<std::string>& emitted,
                      const std::string& doc_name) {
  for (const std::string& k : emitted) {
    EXPECT_TRUE(documented.count(k) > 0)
        << "emitted key `" << k << "` is not documented in " << doc_name;
  }
  for (const std::string& k : documented) {
    EXPECT_TRUE(emitted.count(k) > 0)
        << doc_name << " documents `" << k
        << "` but the emitter never produces it";
  }
}

TEST(SchemaDocs, BenchDocumentKeysMatchBenchSchemaDoc) {
  // A run exercising every optional branch: a failure (so "failures"
  // appears) and one metric of each kind.
  bench::RunOptions opts;
  opts.stream_n = 0;
  bench::BenchRun run;
  run.name = "doc_probe";
  run.paper_ref = "none";
  run.ok = false;
  run.failures.push_back("probe failure");
  bench::MetricResult timed;
  timed.name = "t";
  timed.unit = "s";
  timed.better = bench::Better::Lower;
  timed.timed = true;
  timed.gate = true;
  timed.samples = {0.1, 0.2, 0.3, 0.4, 0.5};
  run.metrics.push_back(timed);
  bench::MetricResult val;
  val.name = "v";
  val.unit = "x";
  val.better = bench::Better::None;
  val.samples = {1.0};
  run.metrics.push_back(val);

  // The document embeds a service-metrics snapshot: enable metrics and
  // record one solve so both counter and histogram series keys appear.
  obs::enable_metrics(true);
  obs::record_solve_metrics("cg", 0.01, 5, "converged", 0);

  const obs::JsonValue env = bench::capture_environment(opts);
  const obs::JsonValue doc = bench::make_document("smoke", opts, env, {run});
  ASSERT_TRUE(bench::validate_bench_document(doc).empty());

  std::set<std::string> emitted;
  collect_keys(doc, emitted);
  expect_same_keys(documented_keys(read_doc("docs/BENCH_SCHEMA.md")), emitted,
                   "docs/BENCH_SCHEMA.md");
}

TEST(SchemaDocs, TelemetryJsonKeysMatchTelemetrySchemaDoc) {
  // Fabricate a report populating every array so every key is emitted.
  obs::SolverReport r;
  r.solve_seconds = 1.25;
  r.iterations = 17;
  r.precond_seconds = 0.75;
  r.precond_calls = 17;
  r.reference_gbs = 20.0;
  r.dropped = 1;
  obs::KernelRow k;
  k.kind = obs::Kind::SpMV;
  k.level = 0;
  k.seconds = 0.5;
  k.calls = 17;
  k.model_bytes_per_call = 1.0e6;
  k.achieved_gbs = 12.0;
  k.efficiency = 0.6;
  r.kernels.push_back(k);
  obs::LevelPrecisionCounters c;
  c.level = 0;
  c.rows = 1000;
  c.stored_values = 27000;
  c.matrix_bytes = 54000;
  c.storage = Prec::FP16;
  c.scaled = true;
  c.g = 100.0;
  c.gmax = 400.0;
  c.headroom = 4.0;
  c.min_abs = 1e-6;
  c.max_abs = 100.0;
  c.subnormal = 3;
  c.conversions_per_apply = 81000;
  c.rescales = 1;
  r.levels.push_back(c);
  obs::HaloLevelStat hl;
  hl.level = 0;
  hl.bytes = 65536;
  hl.exchanges = 8;
  hl.pack_seconds = 0.01;
  hl.unpack_seconds = 0.005;
  r.halo.push_back(hl);
  r.policy = PrecisionPolicy::Guarded;
  AutopilotDecision d;
  d.level = 0;
  d.trigger = AutopilotTrigger::NonFinite;
  d.action = AutopilotAction::Rescale;
  d.from = Prec::FP16;
  d.to = Prec::FP16;
  d.safety = 0.25;
  d.reason = "probe";
  r.autopilot.push_back(d);
  r.request_first = 1;
  r.request_last = 17;
  r.request_count = 17;
  // One counter and one histogram series so every metrics key is emitted.
  r.metrics.enabled = true;
  obs::MetricSnapshot cs;
  cs.name = "smg_solves_total";
  cs.type = obs::MetricType::Counter;
  cs.labels = {{"solver", "cg"}, {"status", "converged"}};
  cs.value = 17.0;
  r.metrics.series.push_back(cs);
  obs::MetricSnapshot hs;
  hs.name = "smg_solve_latency_seconds";
  hs.type = obs::MetricType::Histogram;
  hs.labels = {{"solver", "cg"}};
  hs.le = {1e-3, 2e-3};
  hs.buckets = {10, 6, 1};
  hs.count = 17;
  hs.sum = 0.02;
  hs.p50 = 1e-3;
  hs.p90 = 2e-3;
  hs.p99 = 3e-3;
  r.metrics.series.push_back(hs);

  const auto parsed = obs::json_parse(obs::to_json(r));
  ASSERT_TRUE(parsed.has_value()) << "to_json emitted invalid JSON";

  std::set<std::string> emitted;
  collect_keys(*parsed, emitted);
  expect_same_keys(documented_keys(read_doc("docs/TELEMETRY_SCHEMA.md")),
                   emitted, "docs/TELEMETRY_SCHEMA.md");
}

}  // namespace
}  // namespace smg
