// Tests for batch conversion, truncation reporting, and SIMD widen.
#include <gtest/gtest.h>

#include <vector>

#include "fp/convert.hpp"

namespace smg {
namespace {

TEST(Truncate, ReportsOverflow) {
  std::vector<double> src = {1.0, 1e6, -1e6, 65504.0, 3.0};
  std::vector<half> dst(src.size());
  const auto rep = truncate<half, double>({src.data(), src.size()},
                                          {dst.data(), dst.size()});
  EXPECT_EQ(rep.overflowed, 2u);
  EXPECT_FALSE(rep.safe());
  EXPECT_TRUE(dst[1].is_inf());
  EXPECT_TRUE(dst[2].is_inf());
  EXPECT_TRUE(dst[2].signbit());
  EXPECT_FLOAT_EQ(static_cast<float>(dst[3]), 65504.0f);
}

TEST(Truncate, ReportsUnderflowAndSubnormals) {
  std::vector<double> src = {1e-10, 6.0e-8, 1e-5, 1.0};
  std::vector<half> dst(src.size());
  const auto rep = truncate<half, double>({src.data(), src.size()},
                                          {dst.data(), dst.size()});
  EXPECT_EQ(rep.underflowed, 1u);  // 1e-10 flushes
  EXPECT_GE(rep.subnormal, 2u);    // 6e-8 and 1e-5 are subnormal halves
  EXPECT_TRUE(rep.safe());         // underflow is not overflow
}

TEST(Truncate, Bf16NeverOverflowsFromDoubleInFloatRange) {
  std::vector<double> src = {1e30, -1e30, 1e-30, 42.0};
  std::vector<bfloat16> dst(src.size());
  const auto rep = truncate<bfloat16, double>({src.data(), src.size()},
                                              {dst.data(), dst.size()});
  EXPECT_EQ(rep.overflowed, 0u);
  EXPECT_EQ(rep.underflowed, 0u);
}

TEST(Truncate, ReportAccumulation) {
  TruncateReport a{1, 2, 3};
  const TruncateReport b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.overflowed, 11u);
  EXPECT_EQ(a.underflowed, 22u);
  EXPECT_EQ(a.subnormal, 33u);
}

TEST(Widen, HalfBatchMatchesScalar) {
  // Sizes straddling the 8-wide SIMD boundary, including remainders.
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 33u, 255u}) {
    std::vector<half> src(n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = half(0.25f * static_cast<float>(i) - 3.0f);
    }
    std::vector<float> dst(n, -1.0f);
    widen(src.data(), dst.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dst[i], static_cast<float>(src[i])) << "i=" << i;
    }
  }
}

TEST(Widen, Bf16BatchMatchesScalar) {
  for (std::size_t n : {1u, 8u, 13u, 64u}) {
    std::vector<bfloat16> src(n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = bfloat16(1.5f * static_cast<float>(i) - 10.0f);
    }
    std::vector<float> dst(n);
    widen(src.data(), dst.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dst[i], static_cast<float>(src[i])) << "i=" << i;
    }
  }
}

TEST(Widen, PreservesSpecials) {
  std::vector<half> src = {half::from_bits(0x7C00),   // +inf
                           half::from_bits(0xFC00),   // -inf
                           half::from_bits(0x7E00),   // nan
                           half::from_bits(0x0001),   // min subnormal
                           half(0.0f)};
  std::vector<float> dst(src.size());
  widen(src.data(), dst.data(), src.size());
  EXPECT_TRUE(std::isinf(dst[0]) && dst[0] > 0);
  EXPECT_TRUE(std::isinf(dst[1]) && dst[1] < 0);
  EXPECT_TRUE(std::isnan(dst[2]));
  EXPECT_FLOAT_EQ(dst[3], 5.9604644775390625e-08f);
  EXPECT_EQ(dst[4], 0.0f);
}

}  // namespace
}  // namespace smg
