// Unit tests for the bfloat16 storage type.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fp/bfloat16.hpp"

namespace smg {
namespace {

TEST(BFloat16, KnownBitPatterns) {
  EXPECT_EQ(bfloat16(1.0f).bits(), 0x3F80u);
  EXPECT_EQ(bfloat16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(bfloat16(0.0f).bits(), 0x0000u);
}

TEST(BFloat16, RangeMatchesFloat) {
  // The paper's §8 point: BF16 needs no scaling because its exponent range
  // equals FP32's.
  EXPECT_FALSE(bfloat16(1e8f).is_inf());
  EXPECT_FALSE(bfloat16(1e38f).is_inf());
  EXPECT_FALSE(bfloat16(1e-38f).is_zero());
  EXPECT_TRUE(bfloat16(std::numeric_limits<float>::infinity()).is_inf());
}

TEST(BFloat16, WorseAccuracyThanHalf) {
  // 8 significand bits vs FP16's 11: relative error up to 2^-8.
  const float x = 1.0f + 1.0f / 512.0f;  // needs 10 bits
  EXPECT_EQ(static_cast<float>(bfloat16(x)), 1.0f);  // RNE drops it
}

TEST(BFloat16, RoundToNearestEven) {
  // 1 + 2^-8 is exactly halfway between 1.0 and the next bf16; ties to even
  // rounds down to 1.0.
  const float halfway = 1.0f + 1.0f / 256.0f;
  EXPECT_EQ(bfloat16(halfway).bits(), 0x3F80u);
  // 1 + 3*2^-8 is halfway between reps 1+2^-7 and 1+2^-6... ties to even.
  const float x = 1.0f + 3.0f / 256.0f;
  const float back = static_cast<float>(bfloat16(x));
  EXPECT_TRUE(back == 1.0f + 2.0f / 256.0f || back == 1.0f + 4.0f / 256.0f);
}

TEST(BFloat16, NanQuieted) {
  const bfloat16 n(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(n.is_nan());
  EXPECT_TRUE(std::isnan(static_cast<float>(n)));
}

TEST(BFloat16, RoundTripAllFinitePatterns) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const bfloat16 v = bfloat16::from_bits(static_cast<std::uint16_t>(bits));
    if (!v.is_finite()) {
      continue;
    }
    EXPECT_EQ(bfloat16(static_cast<float>(v)).bits(), v.bits())
        << "bits=" << bits;
  }
}

TEST(BFloat16, DoubleConversionAvoidsDoubleRounding) {
  // bf16 neighbors 1.0078125 (0x3F81) and 1.015625 (0x3F82) straddle the
  // midpoint 0x1.03p0.  A double one ulp *below* the midpoint must round
  // down to 0x3F81 — but the naive two-step double->float->bf16 path rounds
  // the intermediate up onto the midpoint, and the tie then breaks to even
  // (0x3F82).  The round-to-odd intermediate preserves "below the midpoint".
  const double d = std::nextafter(0x1.03p0, 0.0);
  EXPECT_EQ(bfloat16(static_cast<float>(d)).bits(), 0x3F82u)
      << "the hazard this test guards against has vanished";
  EXPECT_EQ(bfloat16(d).bits(), 0x3F81u);

  // Exact doubles and float inputs are unaffected.
  EXPECT_EQ(bfloat16(1.0).bits(), 0x3F80u);
  EXPECT_EQ(bfloat16(0x1.03p0).bits(), 0x3F82u);  // exact midpoint: tie->even
  EXPECT_TRUE(bfloat16(std::numeric_limits<double>::infinity()).is_inf());
  EXPECT_TRUE(bfloat16(std::nan("")).is_nan());
}

TEST(BFloat16, MaxFiniteAndInfCarryEdges) {
  // Largest finite bf16 is 0x1.FEp127 (0x7F7F).  The rounding midpoint to
  // the would-be next value is 0x1.FFp127: from float, the tie carries up
  // into inf (0x7F7F has an odd mantissa) — intentional and pinned here.
  EXPECT_EQ(bfloat16(0x1.FEp127f).bits(), 0x7F7Fu);
  EXPECT_FALSE(bfloat16(0x1.FEp127f).is_inf());
  EXPECT_TRUE(bfloat16(0x1.FFp127f).is_inf());
  // Just below the midpoint must stay finite — including from a double,
  // where the float intermediate lands exactly on the midpoint and only the
  // round-to-odd guard keeps the carry from firing.
  EXPECT_EQ(bfloat16(std::nextafter(0x1.FFp127f, 0.0f)).bits(), 0x7F7Fu);
  const double e = std::nextafter(0x1.FFp127, 0.0);
  EXPECT_TRUE(bfloat16(static_cast<float>(e)).is_inf())
      << "the hazard this test guards against has vanished";
  EXPECT_EQ(bfloat16(e).bits(), 0x7F7Fu);
  // Above the midpoint overflows from either width.
  EXPECT_TRUE(bfloat16(0x1.FF8p127).is_inf());
  EXPECT_TRUE(bfloat16(std::numeric_limits<double>::max()).is_inf());
}

TEST(BFloat16, LimitsAreConsistent) {
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<bfloat16>::epsilon()),
                  0.0078125f);  // 2^-7
  EXPECT_GT(static_cast<float>(std::numeric_limits<bfloat16>::max()), 3.3e38f);
}

}  // namespace
}  // namespace smg
