// Unit tests for the IEEE binary16 storage type.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fp/half.hpp"

namespace smg {
namespace {

TEST(Half, ZeroRoundTrip) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(static_cast<float>(half(0.0f)), 0.0f);
  EXPECT_TRUE(half(0.0f).is_zero());
  EXPECT_TRUE(half(-0.0f).is_zero());
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(half(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half(65504.0f).bits(), 0x7BFFu);
  EXPECT_EQ(half(-65504.0f).bits(), 0xFBFFu);
}

TEST(Half, MaxFiniteValue) {
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<half>::max()),
                  65504.0f);
  EXPECT_TRUE(std::numeric_limits<half>::max().is_finite());
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half(65536.0f).is_inf());
  EXPECT_TRUE(half(1e8f).is_inf());
  EXPECT_TRUE(half(-1e8f).is_inf());
  EXPECT_TRUE(half(-1e8f).signbit());
  EXPECT_FALSE(half(65504.0f).is_inf());
}

TEST(Half, RoundToNearestEvenAtMaxBoundary) {
  // 65519.999 rounds down to 65504; >= 65520 rounds to inf.
  EXPECT_FALSE(half(65519.0f).is_inf());
  EXPECT_TRUE(half(65520.0f).is_inf());
}

TEST(Half, SubnormalRange) {
  const float min_normal = 6.103515625e-05f;   // 2^-14
  const float min_subnormal = 5.9604645e-08f;  // 2^-24
  EXPECT_FALSE(half(min_normal).is_subnormal());
  EXPECT_TRUE(half(min_subnormal).is_subnormal());
  EXPECT_GT(static_cast<float>(half(min_subnormal)), 0.0f);
}

TEST(Half, UnderflowToZero) {
  // Below half of the smallest subnormal, RNE rounds to zero.
  EXPECT_TRUE(half(1e-9f).is_zero());
  EXPECT_TRUE(half(2.9e-8f).is_zero());
  EXPECT_FALSE(half(6e-8f).is_zero());
}

TEST(Half, NanPropagation) {
  const half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.is_nan());
  EXPECT_TRUE(std::isnan(static_cast<float>(h)));
}

TEST(Half, InfinityConversion) {
  const half h(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(h.is_inf());
  EXPECT_TRUE(std::isinf(static_cast<float>(h)));
  EXPECT_FALSE(h.signbit());
}

TEST(Half, ArithmeticPromotesToFloat) {
  const half a(1.5f), b(2.5f);
  EXPECT_FLOAT_EQ(a + b, 4.0f);
  EXPECT_FLOAT_EQ(a * 2.0f, 3.0f);
  EXPECT_FLOAT_EQ(2.0f * b, 5.0f);
}

TEST(Half, Comparison) {
  EXPECT_TRUE(half(1.0f) < half(2.0f));
  EXPECT_TRUE(half(1.0f) == half(1.0f));
  EXPECT_FALSE(half(-1.0f) == half(1.0f));
}

TEST(Half, SoftwareHardwareAgree) {
  // The software conversion path must match the F16C hardware path bit for
  // bit over a wide sample (incl. boundaries and subnormals).
  for (int e = -30; e <= 20; ++e) {
    for (double m : {1.0, 1.0009765625, 1.4999, 1.5, 1.999}) {
      const float f = static_cast<float>(m * std::pow(2.0, e));
      const std::uint16_t sw =
          detail::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(f));
      const std::uint16_t hw = half::float_to_bits(f);
      EXPECT_EQ(sw, hw) << "f=" << f;
      const std::uint16_t swn =
          detail::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(-f));
      EXPECT_EQ(swn, half::float_to_bits(-f)) << "f=" << -f;
    }
  }
}

TEST(Half, SoftwareWidenMatchesHardware) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto b16 = static_cast<std::uint16_t>(bits);
    const float sw = std::bit_cast<float>(detail::f16_bits_to_f32_bits(b16));
    const float hw = half::bits_to_float(b16);
    if (std::isnan(sw) || std::isnan(hw)) {
      EXPECT_EQ(std::isnan(sw), std::isnan(hw)) << "bits=" << bits;
    } else {
      EXPECT_EQ(sw, hw) << "bits=" << bits;
    }
  }
}

TEST(Half, RoundTripAllFiniteBitPatterns) {
  // half -> float -> half must be the identity for every finite pattern.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const half h = half::from_bits(static_cast<std::uint16_t>(bits));
    if (!h.is_finite()) {
      continue;
    }
    const half round_trip(static_cast<float>(h));
    EXPECT_EQ(round_trip.bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Half, EpsilonMatchesDigits) {
  // 11 significand bits -> eps = 2^-10.
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<half>::epsilon()),
                  0.0009765625f);
  const float one_plus_eps =
      1.0f + static_cast<float>(std::numeric_limits<half>::epsilon());
  EXPECT_NE(static_cast<float>(half(one_plus_eps)), 1.0f);
}

}  // namespace
}  // namespace smg
