// Unit tests for the 8-bit e4m3 storage type and the Prec format tables.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fp/fp8.hpp"
#include "fp/precision.hpp"

namespace smg {
namespace {

TEST(Fp8, KnownBitPatterns) {
  EXPECT_EQ(fp8(1.0f).bits(), 0x38u);   // exp 7 (bias), man 0
  EXPECT_EQ(fp8(-2.0f).bits(), 0xC0u);  // sign | exp 8
  EXPECT_EQ(fp8(0.0f).bits(), 0x00u);
  EXPECT_EQ(fp8(240.0f).bits(), 0x77u);  // largest finite
  EXPECT_EQ(fp8(0.015625f).bits(), 0x08u);     // min normal 2^-6
  EXPECT_EQ(fp8(0.001953125f).bits(), 0x01u);  // min subnormal 2^-9
}

TEST(Fp8, RoundTripAllFinitePatterns) {
  for (std::uint32_t bits = 0; bits <= 0xFFu; ++bits) {
    const fp8 v = fp8::from_bits(static_cast<std::uint8_t>(bits));
    if (!v.is_finite()) {
      continue;
    }
    EXPECT_EQ(fp8(static_cast<float>(v)).bits(), v.bits()) << "bits=" << bits;
  }
}

TEST(Fp8, SpecialValuePredicates) {
  EXPECT_TRUE(fp8::from_bits(0x78).is_inf());
  EXPECT_TRUE(fp8::from_bits(0xF8).is_inf());
  EXPECT_TRUE(fp8::from_bits(0x7C).is_nan());
  EXPECT_FALSE(fp8::from_bits(0x77).is_inf());
  EXPECT_TRUE(fp8::from_bits(0x77).is_finite());
  EXPECT_TRUE(fp8::from_bits(0x01).is_subnormal());
  EXPECT_FALSE(fp8::from_bits(0x08).is_subnormal());
  EXPECT_TRUE(fp8::from_bits(0x80).is_zero());
  EXPECT_TRUE(fp8::from_bits(0x80).signbit());
  EXPECT_TRUE(std::isinf(static_cast<float>(fp8::from_bits(0x78))));
  EXPECT_TRUE(std::isnan(static_cast<float>(fp8::from_bits(0x7C))));
  const fp8 n(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(n.is_nan());
}

TEST(Fp8, RoundToNearestEvenAtTheInfEdge) {
  // fp8 steps by 16 near the top: 224, 240, then inf (the would-be 256).
  // 244 is below the 248 midpoint -> 240; 248 ties and 240's mantissa is
  // odd, so the carry rounds *up* into inf; anything above follows.
  EXPECT_EQ(fp8(244.0f).bits(), 0x77u);
  EXPECT_TRUE(fp8(248.0f).is_inf());
  EXPECT_TRUE(fp8(1e6f).is_inf());
  EXPECT_EQ(fp8(247.9f).bits(), 0x77u);
}

TEST(Fp8, RoundToNearestEvenMidpoints) {
  // 1.0 (0x38) and 1.125 (0x39) straddle 1.0625: tie goes to even (0x38).
  EXPECT_EQ(fp8(1.0625f).bits(), 0x38u);
  // 1.125 and 1.25 straddle 1.1875: tie goes to even (0x3A = 1.25).
  EXPECT_EQ(fp8(1.1875f).bits(), 0x3Au);
  EXPECT_EQ(fp8(1.07f).bits(), 0x39u);  // above the midpoint rounds up
}

TEST(Fp8, SubnormalEdges) {
  // Half the smallest subnormal ties between 0 and 0x01: even wins (0).
  EXPECT_TRUE(fp8(0.0009765625f).is_zero());  // 2^-10, exact tie
  EXPECT_EQ(fp8(0.0011f).bits(), 0x01u);      // above the tie rounds up
  EXPECT_TRUE(fp8(0.0005f).is_zero());        // below the tie flushes
  // Largest subnormal 7*2^-9 and its neighbor across the normal boundary.
  EXPECT_EQ(fp8(0.013671875f).bits(), 0x07u);
  EXPECT_EQ(fp8(0.015f).bits(), 0x08u);  // rounds up into min normal
}

TEST(Fp8, DoubleConversionAvoidsDoubleRounding) {
  // d sits just above the fp8 midpoint 1.0625, but below float resolution:
  // the two-step double->float->fp8 path rounds the intermediate *onto* the
  // midpoint and the tie then breaks to even (0x38 = 1.0) — wrong.  The
  // round-to-odd intermediate keeps the "above the midpoint" information,
  // giving 0x39 = 1.125.
  const double d = 1.0625 + 0x1p-30;
  EXPECT_EQ(fp8::float_to_bits(static_cast<float>(d)), 0x38u)
      << "the hazard this test guards against has vanished";
  EXPECT_EQ(fp8(d).bits(), 0x39u);

  // Mirror case at the inf edge: just below the 248 midpoint must stay
  // finite (240), not carry into inf via the rounded-up intermediate.
  const double e = 248.0 - 0x1p-30;
  EXPECT_TRUE(fp8::from_bits(fp8::float_to_bits(static_cast<float>(e)))
                  .is_inf())
      << "the hazard this test guards against has vanished";
  EXPECT_EQ(fp8(e).bits(), 0x77u);

  // Exact doubles take the fast path unchanged.
  EXPECT_EQ(fp8(1.0).bits(), 0x38u);
  EXPECT_EQ(fp8(240.0).bits(), 0x77u);
  EXPECT_TRUE(fp8(std::numeric_limits<double>::infinity()).is_inf());
  EXPECT_TRUE(fp8(std::nan("")).is_nan());
}

TEST(Fp8, LimitsAreConsistent) {
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<fp8>::max()), 240.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<fp8>::lowest()),
                  -240.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<fp8>::min()),
                  kFp8MinNormal);
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<fp8>::denorm_min()),
                  kFp8MinSubnormal);
  EXPECT_FLOAT_EQ(static_cast<float>(std::numeric_limits<fp8>::epsilon()),
                  0.125f);
  EXPECT_TRUE(std::numeric_limits<fp8>::infinity().is_inf());
  EXPECT_TRUE(std::numeric_limits<fp8>::quiet_NaN().is_nan());
}

TEST(PrecTables, ExhaustivePerFormat) {
  // bytes_of / to_string / format_max are compile-time tables asserted to
  // cover every Prec member; spot-check each entry end to end.
  EXPECT_EQ(bytes_of(Prec::FP64), 8u);
  EXPECT_EQ(bytes_of(Prec::FP32), 4u);
  EXPECT_EQ(bytes_of(Prec::FP16), 2u);
  EXPECT_EQ(bytes_of(Prec::BF16), 2u);
  EXPECT_EQ(bytes_of(Prec::FP8), 1u);

  EXPECT_EQ(to_string(Prec::FP64), "fp64");
  EXPECT_EQ(to_string(Prec::FP32), "fp32");
  EXPECT_EQ(to_string(Prec::FP16), "fp16");
  EXPECT_EQ(to_string(Prec::BF16), "bf16");
  EXPECT_EQ(to_string(Prec::FP8), "fp8");

  EXPECT_EQ(format_max(Prec::FP16), 65504.0);
  EXPECT_EQ(format_max(Prec::BF16), 0x1.FEp127);
  EXPECT_EQ(format_max(Prec::FP8), 240.0);
  EXPECT_EQ(format_max(Prec::FP32),
            static_cast<double>(std::numeric_limits<float>::max()));
  EXPECT_EQ(format_max(Prec::FP64), std::numeric_limits<double>::max());

  EXPECT_FALSE(is_narrow_storage(Prec::FP64));
  EXPECT_FALSE(is_narrow_storage(Prec::FP32));
  EXPECT_TRUE(is_narrow_storage(Prec::FP16));
  EXPECT_TRUE(is_narrow_storage(Prec::BF16));
  EXPECT_TRUE(is_narrow_storage(Prec::FP8));
}

TEST(PrecTables, ParseRoundTrip) {
  for (const Prec p : {Prec::FP64, Prec::FP32, Prec::FP16, Prec::BF16,
                       Prec::FP8}) {
    Prec out = Prec::FP64;
    EXPECT_TRUE(parse_prec(to_string(p), out));
    EXPECT_EQ(out, p);
  }
  Prec out = Prec::FP16;
  EXPECT_FALSE(parse_prec("fp4", out));
  EXPECT_EQ(out, Prec::FP16);  // unparsed leaves the output untouched
}

}  // namespace
}  // namespace smg
