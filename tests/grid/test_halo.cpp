// Halo exchange: pack/unpack round-trip over all 26 neighbor directions,
// the FP16 wire's tolerance contract, and the measured-bytes ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "fp/half.hpp"
#include "grid/halo.hpp"
#include "util/thread_pool.hpp"

namespace smg {
namespace {

/// Unique, FP32-exact value per (global cell, block component), kept inside
/// FP16 range (< 65504) so the half-wire test measures rounding, not
/// overflow.
double cell_value(int gi, int gj, int gk, int c) {
  return 0.5 + gi + 16.0 * gj + 256.0 * gk + 0.25 * c;
}

struct Fixture {
  BoxDecomp d;
  HaloPlan plan;
  int bs;
  std::vector<std::vector<double>> fields;  // per-box local dof arrays

  Fixture(const Box& g, std::array<int, 3> nb, int ghost, int bs_in)
      : d(BoxDecomp::make(g, nb, ghost)), plan(d, bs_in), bs(bs_in) {
    fields.resize(static_cast<std::size_t>(d.nboxes()));
    for (int b = 0; b < d.nboxes(); ++b) {
      const SubBox& s = d.box(b);
      const Box lb = s.local();
      auto& f = fields[static_cast<std::size_t>(b)];
      f.assign(static_cast<std::size_t>(lb.size()) * bs, -1.0);
      for (int k = 0; k < s.n[2]; ++k) {
        for (int j = 0; j < s.n[1]; ++j) {
          for (int i = 0; i < s.n[0]; ++i) {
            for (int c = 0; c < bs; ++c) {
              f[static_cast<std::size_t>(s.local_idx(i, j, k) * bs + c)] =
                  cell_value(s.lo[0] + i, s.lo[1] + j, s.lo[2] + k, c);
            }
          }
        }
      }
    }
  }

  std::function<double*(int)> field() {
    return [this](int b) -> double* {
      return fields[static_cast<std::size_t>(b)].data();
    };
  }

  /// Check every materialized ghost cell of every box against the global
  /// function, within `rel` relative tolerance (0 = exact).
  void check_ghosts(double rel) const {
    for (int b = 0; b < d.nboxes(); ++b) {
      const SubBox& s = d.box(b);
      const Box lb = s.local();
      const auto& f = fields[static_cast<std::size_t>(b)];
      for (int k = 0; k < lb.nz; ++k) {
        for (int j = 0; j < lb.ny; ++j) {
          for (int i = 0; i < lb.nx; ++i) {
            const bool interior = i >= s.glo[0] && i < s.glo[0] + s.n[0] &&
                                  j >= s.glo[1] && j < s.glo[1] + s.n[1] &&
                                  k >= s.glo[2] && k < s.glo[2] + s.n[2];
            if (interior) {
              continue;
            }
            for (int c = 0; c < bs; ++c) {
              const double want = cell_value(i + s.off(0), j + s.off(1),
                                             k + s.off(2), c);
              const double got =
                  f[static_cast<std::size_t>(lb.idx(i, j, k) * bs + c)];
              if (rel == 0.0) {
                EXPECT_EQ(got, want)
                    << "box " << b << " ghost (" << i << "," << j << ","
                    << k << ") comp " << c;
              } else {
                EXPECT_LE(std::abs(got - want), rel * std::abs(want))
                    << "box " << b << " ghost (" << i << "," << j << ","
                    << k << ")";
              }
            }
          }
        }
      }
    }
  }
};

TEST(HaloPlan, CenterBoxHasAll26Directions) {
  const Fixture fx(Box{9, 9, 9}, {3, 3, 3}, 1, 1);
  // Box 13 = (1,1,1) is fully surrounded.
  EXPECT_EQ(fx.plan.msgs(13).size(), 26u);
  // A corner box sees 7 neighbors.
  EXPECT_EQ(fx.plan.msgs(0).size(), 7u);
  EXPECT_GT(fx.plan.values_per_exchange(), 0);
}

TEST(HaloExchange, RawWireRoundTripIsExactAllDirections) {
  Fixture fx(Box{9, 9, 9}, {3, 3, 3}, 1, 1);
  ThreadPool pool(3);
  MemcpyExchanger ex;
  HaloExchange hx;
  hx.init(&fx.plan, sizeof(double));
  hx.exchange<double>(fx.field(), pool, ex);
  fx.check_ghosts(0.0);
}

TEST(HaloExchange, BlockDofsRoundTrip) {
  Fixture fx(Box{8, 6, 6}, {2, 2, 1}, 1, 3);
  ThreadPool pool(2);
  MemcpyExchanger ex;
  HaloExchange hx;
  hx.init(&fx.plan, sizeof(double));
  hx.exchange<double>(fx.field(), pool, ex);
  fx.check_ghosts(0.0);
}

TEST(HaloExchange, Fp16WireMeetsToleranceContract) {
  Fixture fx(Box{9, 9, 9}, {3, 3, 3}, 1, 1);
  ThreadPool pool(2);
  MemcpyExchanger ex;
  HaloExchange hx;
  hx.init(&fx.plan, sizeof(half));
  hx.exchange<double>(fx.field(), pool, ex);
  // FP16 rounding: <= 2^-11 relative per value (plus the double->float
  // step, absorbed by the same bound at these magnitudes).
  fx.check_ghosts(std::ldexp(1.0, -11));
}

TEST(HaloExchange, LedgerMatchesPlanBytes) {
  Fixture fx(Box{9, 9, 9}, {3, 3, 3}, 1, 2);
  ThreadPool pool(2);
  MemcpyExchanger ex;
  HaloExchange hx;
  hx.init(&fx.plan, sizeof(double));
  const std::uint64_t per =
      static_cast<std::uint64_t>(fx.plan.values_per_exchange()) *
      sizeof(double);
  EXPECT_EQ(hx.bytes_per_exchange(), per);
  EXPECT_EQ(hx.bytes_exchanged(), 0u);
  hx.exchange<double>(fx.field(), pool, ex);
  hx.exchange<double>(fx.field(), pool, ex);
  EXPECT_EQ(hx.exchanges(), 2u);
  EXPECT_EQ(hx.bytes_exchanged(), 2 * per);
  hx.reset_ledger();
  EXPECT_EQ(hx.bytes_exchanged(), 0u);
  // The FP16 wire halves the bytes of the FP32 wire exactly.
  HaloExchange hx16;
  hx16.init(&fx.plan, sizeof(half));
  HaloExchange hx32;
  hx32.init(&fx.plan, sizeof(float));
  EXPECT_EQ(2 * hx16.bytes_per_exchange(), hx32.bytes_per_exchange());
}

TEST(HaloExchange, ClippedBoundaryBoxesExchangeOnlyInDomainGhosts) {
  // 2x1x1: each box has ghosts only toward its one neighbor.
  Fixture fx(Box{10, 5, 5}, {2, 1, 1}, 1, 1);
  EXPECT_EQ(fx.plan.msgs(0).size(), 1u);
  EXPECT_EQ(fx.plan.msgs(1).size(), 1u);
  ThreadPool pool(2);
  MemcpyExchanger ex;
  HaloExchange hx;
  hx.init(&fx.plan, sizeof(double));
  hx.exchange<double>(fx.field(), pool, ex);
  fx.check_ghosts(0.0);
}

}  // namespace
}  // namespace smg
