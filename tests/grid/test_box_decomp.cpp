// Box decomposition: partition coverage, ghost clipping, coarse-cut
// alignment, agglomeration policy, and the Box degenerate-extent helpers.
#include <gtest/gtest.h>

#include <set>

#include "core/transfer.hpp"
#include "grid/box_decomp.hpp"

namespace smg {
namespace {

TEST(Box, InteriorSizeDegenerateExtents) {
  // 1- and 2-cell extents have no interior; the product clamps at 0 per
  // dimension instead of going negative.
  EXPECT_EQ((Box{1, 8, 8}.interior_size()), 0);
  EXPECT_EQ((Box{2, 8, 8}.interior_size()), 0);
  EXPECT_EQ((Box{8, 1, 1}.interior_size()), 0);
  EXPECT_EQ((Box{2, 2, 2}.interior_size()), 0);
  EXPECT_EQ((Box{3, 3, 3}.interior_size()), 1);
  EXPECT_EQ((Box{8, 8, 8}.interior_size()), 6 * 6 * 6);
}

TEST(Box, GhostGrownGrowsAndClamps) {
  EXPECT_EQ((Box{4, 5, 6}.ghost_grown(1)), (Box{6, 7, 8}));
  EXPECT_EQ((Box{4, 5, 6}.ghost_grown(0)), (Box{4, 5, 6}));
  // Negative growth shrinks, clamping degenerate extents at 0.
  EXPECT_EQ((Box{4, 5, 6}.ghost_grown(-2)), (Box{0, 1, 2}));
  EXPECT_EQ((Box{1, 1, 1}.ghost_grown(-1)), (Box{0, 0, 0}));
}

TEST(BoxDecomp, PartitionCoversGlobalExactlyOnce) {
  const Box g{17, 13, 11};
  const BoxDecomp d = BoxDecomp::make(g, {3, 2, 2}, 1);
  ASSERT_EQ(d.nboxes(), 12);
  std::set<std::int64_t> seen;
  for (const SubBox& s : d.boxes()) {
    for (int k = 0; k < s.n[2]; ++k) {
      for (int j = 0; j < s.n[1]; ++j) {
        for (int i = 0; i < s.n[0]; ++i) {
          const std::int64_t cell =
              g.idx(s.lo[0] + i, s.lo[1] + j, s.lo[2] + k);
          EXPECT_TRUE(seen.insert(cell).second) << "cell owned twice";
        }
      }
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), g.size());
}

TEST(BoxDecomp, CutsAreBalancedAndMonotone) {
  const BoxDecomp d = BoxDecomp::make(Box{17, 17, 17}, {2, 2, 2}, 1);
  for (int dim = 0; dim < 3; ++dim) {
    const auto& c = d.cuts(dim);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.front(), 0);
    EXPECT_EQ(c.back(), 17);
    for (std::size_t i = 1; i < c.size(); ++i) {
      EXPECT_LT(c[i - 1], c[i]);
    }
  }
  // Balanced: 17 -> 9 + 8.
  EXPECT_EQ(d.cuts(0)[1], 9);
}

TEST(BoxDecomp, GhostsClipAtGlobalBoundary) {
  const BoxDecomp d = BoxDecomp::make(Box{16, 16, 16}, {2, 1, 1}, 2);
  const SubBox& lo = d.box(0);
  const SubBox& hi = d.box(1);
  // Low box: no ghost on the global low side, 2 toward its neighbor.
  EXPECT_EQ(lo.glo[0], 0);
  EXPECT_EQ(lo.ghi[0], 2);
  EXPECT_EQ(hi.glo[0], 2);
  EXPECT_EQ(hi.ghi[0], 0);
  // Unsplit dims still clip at the domain (no neighbor, no ghost needed
  // beyond the domain): min(ghost, 0) == 0 at both ends.
  EXPECT_EQ(lo.glo[1], 0);
  EXPECT_EQ(lo.ghi[1], 0);
  // local() == interior + materialized ghosts.
  EXPECT_EQ(lo.local(), (Box{10, 16, 16}));
}

TEST(BoxDecomp, CoarsenedCutsAreCeilHalfOnCoarsenedDims) {
  const Box fine{17, 17, 9};
  const BoxDecomp df = BoxDecomp::make(fine, {2, 2, 2}, 1);
  Coarsening c;
  c.fine = fine;
  c.coarse = Box{9, 9, 9};
  c.mask = {true, true, false};  // z left uncoarsened
  const BoxDecomp dc = df.coarsened(c, 1);
  EXPECT_EQ(dc.global(), (Box{9, 9, 9}));
  EXPECT_EQ(dc.nb(), df.nb());
  // Coarsened dims: cut 9 -> ceil(9/2) = 5; uncoarsened: identical.
  EXPECT_EQ(dc.cuts(0)[1], 5);
  EXPECT_EQ(dc.cuts(1)[1], 5);
  EXPECT_EQ(dc.cuts(2)[1], df.cuts(2)[1]);
}

TEST(BoxDecomp, CoarseChildAlignmentInvariant) {
  // Every coarse interior cell's fine children must land inside the
  // matching fine sub-box's interior + 1-wide ghost — the invariant that
  // keeps per-box restriction local.
  const Box fine{21, 17, 13};
  const BoxDecomp df = BoxDecomp::make(fine, {2, 2, 2}, 1);
  Coarsening c;
  c.fine = fine;
  c.coarse = Box{11, 9, 7};
  c.mask = {true, true, true};
  const BoxDecomp dc = df.coarsened(c, 1);
  for (int b = 0; b < dc.nboxes(); ++b) {
    const SubBox& cs = dc.box(b);
    const SubBox& fs = df.box(b);
    for (int dim = 0; dim < 3; ++dim) {
      for (int I = cs.lo[dim]; I < cs.lo[dim] + cs.n[dim]; ++I) {
        for (int t = -1; t <= 1; ++t) {
          const int child = 2 * I + t;
          if (child < 0 || child >= (dim == 0 ? fine.nx
                                     : dim == 1 ? fine.ny
                                                : fine.nz)) {
            continue;
          }
          EXPECT_GE(child, fs.lo[dim] - fs.glo[dim]);
          EXPECT_LT(child, fs.lo[dim] + fs.n[dim] + fs.ghi[dim]);
        }
      }
    }
  }
}

TEST(BoxDecomp, AgglomeratesWhenBoxesTooSmall) {
  // 8^3 split 2x2x2 -> 4^3 = 64-cell boxes; threshold 100 collapses it.
  const BoxDecomp d =
      decompose_level(Box{8, 8, 8}, {2, 2, 2}, 1, /*min_box_cells=*/100);
  EXPECT_FALSE(d.decomposed());
  EXPECT_EQ(d.ghost(), 0);
  // Threshold 64 keeps it decomposed.
  const BoxDecomp d2 = decompose_level(Box{8, 8, 8}, {2, 2, 2}, 1, 64);
  EXPECT_TRUE(d2.decomposed());
}

TEST(BoxDecomp, AgglomeratesEmptyAndThinBoxes) {
  // 3 cells split 4 ways: some box is empty.
  EXPECT_FALSE(decompose_level(Box{3, 8, 8}, {4, 1, 1}, 1, 1).decomposed());
  // Split-dim extent thinner than the ghost width: a ghost ring would span
  // past the adjacent box.
  const BoxDecomp thin = BoxDecomp::make(Box{4, 8, 8}, {3, 1, 1}, 2);
  EXPECT_TRUE(needs_agglomeration(thin, 1));
  // Same shape with ghost 1 is fine.
  const BoxDecomp ok = BoxDecomp::make(Box{4, 8, 8}, {3, 1, 1}, 1);
  EXPECT_FALSE(needs_agglomeration(ok, 1));
}

TEST(BoxDecomp, NeighborLookup) {
  const BoxDecomp d = BoxDecomp::make(Box{12, 12, 12}, {2, 2, 2}, 1);
  EXPECT_EQ(d.neighbor(0, 1, 0, 0), 1);
  EXPECT_EQ(d.neighbor(0, 0, 1, 0), 2);
  EXPECT_EQ(d.neighbor(0, 0, 0, 1), 4);
  EXPECT_EQ(d.neighbor(0, -1, 0, 0), -1);
  EXPECT_EQ(d.neighbor(7, 1, 0, 0), -1);
  EXPECT_EQ(d.neighbor(0, 1, 1, 1), 7);
}

}  // namespace
}  // namespace smg
