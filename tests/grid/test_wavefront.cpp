// WavefrontSchedule invariants: complete coverage, strict dependency
// ordering (the property that makes the parallel SymGS sweep bitwise
// identical to the sequential one), and the sequential fallback for
// stencils outside the |dy|,|dz| <= 1 bound.
#include <gtest/gtest.h>

#include <vector>

#include "grid/wavefront.hpp"

namespace smg {
namespace {

/// level_of[item] for every scheduled item; -1 if the item never appears.
std::vector<int> level_map(const WavefrontSchedule& wf, std::int64_t n) {
  std::vector<int> lvl(static_cast<std::size_t>(n), -1);
  for (int l = 0; l < wf.nlevels(); ++l) {
    for (std::int32_t it : wf.level(l)) {
      EXPECT_EQ(-1, lvl[static_cast<std::size_t>(it)])
          << "item " << it << " scheduled twice";
      lvl[static_cast<std::size_t>(it)] = l;
    }
  }
  return lvl;
}

TEST(WavefrontLines, CoversEveryLineOnceAndOrdersDependencies) {
  const Box box{6, 7, 5};
  for (Pattern p : {Pattern::P3d7, Pattern::P3d19, Pattern::P3d27}) {
    const Stencil st = Stencil::make(p);
    const auto wf = WavefrontSchedule::lines(box, st);
    ASSERT_TRUE(wf.valid()) << to_string(p);
    EXPECT_EQ(WfGranularity::Line, wf.granularity());
    ASSERT_EQ(static_cast<std::int64_t>(box.ny) * box.nz, wf.nitems());

    const auto lvl = level_map(wf, wf.nitems());
    for (int v : lvl) {
      EXPECT_GE(v, 0);
    }
    // Every stencil offset must cross strictly between levels in the
    // direction of the sweep order (lex-before => strictly lower level).
    for (int k = 0; k < box.nz; ++k) {
      for (int j = 0; j < box.ny; ++j) {
        const int me = lvl[static_cast<std::size_t>(j + box.ny * k)];
        for (const Offset& o : st.offsets()) {
          const int jn = j + o.dy;
          const int kn = k + o.dz;
          if (jn < 0 || jn >= box.ny || kn < 0 || kn >= box.nz) {
            continue;
          }
          const int nb = lvl[static_cast<std::size_t>(jn + box.ny * kn)];
          if (o.dz < 0 || (o.dz == 0 && o.dy < 0)) {
            EXPECT_LT(nb, me) << to_string(p);
          } else if (o.dz > 0 || (o.dz == 0 && o.dy > 0)) {
            EXPECT_GT(nb, me) << to_string(p);
          } else {
            EXPECT_EQ(nb, me);  // same line
          }
        }
      }
    }
    EXPECT_GT(wf.mean_parallelism(), 1.0) << to_string(p);
  }
}

TEST(WavefrontCells, CoversEveryCellOnceAndOrdersDependencies) {
  const Box box{5, 4, 6};
  for (Pattern p : {Pattern::P3d7, Pattern::P3d19, Pattern::P3d27}) {
    const Stencil st = Stencil::make(p);
    const auto wf = WavefrontSchedule::cells(box, st);
    ASSERT_TRUE(wf.valid()) << to_string(p);
    EXPECT_EQ(WfGranularity::Cell, wf.granularity());
    ASSERT_EQ(box.size(), wf.nitems());

    const auto lvl = level_map(wf, wf.nitems());
    for (int k = 0; k < box.nz; ++k) {
      for (int j = 0; j < box.ny; ++j) {
        for (int i = 0; i < box.nx; ++i) {
          const int me = lvl[static_cast<std::size_t>(box.idx(i, j, k))];
          for (const Offset& o : st.offsets()) {
            if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
              continue;
            }
            const int nb = lvl[static_cast<std::size_t>(
                box.idx(i + o.dx, j + o.dy, k + o.dz))];
            if (o.is_center()) {
              EXPECT_EQ(nb, me);
            } else if (o.before_center()) {
              EXPECT_LT(nb, me) << to_string(p);
            } else {
              EXPECT_GT(nb, me) << to_string(p);
            }
          }
        }
      }
    }
  }
}

TEST(Wavefront, EmptyLevelsAreCompacted) {
  // ny == 1 makes every odd line level (j + 2k) empty; the schedule must
  // still enumerate exactly nz lines with no zero-width levels.
  const auto wf =
      WavefrontSchedule::lines(Box{8, 1, 5}, Stencil::make(Pattern::P3d7));
  ASSERT_TRUE(wf.valid());
  EXPECT_EQ(5, wf.nitems());
  EXPECT_EQ(5, wf.nlevels());
  for (int l = 0; l < wf.nlevels(); ++l) {
    EXPECT_FALSE(wf.level(l).empty());
  }
}

TEST(Wavefront, WideOffsetsFallBackToSequential) {
  // A |dy| = 2 offset breaks the j + 2k level ordering: the schedule must
  // refuse (callers then run the sequential sweep) rather than mis-order.
  const Stencil wide({Offset{0, 0, 0}, Offset{0, 2, 0}, Offset{0, -2, 0}});
  EXPECT_FALSE(WavefrontSchedule::lines(Box{6, 6, 6}, wide).valid());
  EXPECT_FALSE(WavefrontSchedule::cells(Box{6, 6, 6}, wide).valid());

  // Cell granularity additionally requires |dx| <= 1 (a -2 in-line offset
  // would need a NEW value the cell schedule cannot order).
  const Stencil longx({Offset{0, 0, 0}, Offset{-2, 0, 0}, Offset{2, 0, 0}});
  EXPECT_TRUE(WavefrontSchedule::lines(Box{6, 6, 6}, longx).valid());
  EXPECT_FALSE(WavefrontSchedule::cells(Box{6, 6, 6}, longx).valid());
}

}  // namespace
}  // namespace smg
