// Tests for Box indexing and stencil patterns.
#include <gtest/gtest.h>

#include "grid/box.hpp"
#include "grid/stencil.hpp"

namespace smg {
namespace {

TEST(Box, IndexingIsLexicographicXFastest) {
  const Box b{4, 3, 2};
  EXPECT_EQ(b.size(), 24);
  EXPECT_EQ(b.idx(0, 0, 0), 0);
  EXPECT_EQ(b.idx(1, 0, 0), 1);
  EXPECT_EQ(b.idx(0, 1, 0), 4);
  EXPECT_EQ(b.idx(0, 0, 1), 12);
  EXPECT_EQ(b.idx(3, 2, 1), 23);
}

TEST(Box, Contains) {
  const Box b{4, 3, 2};
  EXPECT_TRUE(b.contains(0, 0, 0));
  EXPECT_TRUE(b.contains(3, 2, 1));
  EXPECT_FALSE(b.contains(-1, 0, 0));
  EXPECT_FALSE(b.contains(4, 0, 0));
  EXPECT_FALSE(b.contains(0, 3, 0));
  EXPECT_FALSE(b.contains(0, 0, 2));
}

TEST(Box, NoOverflowForLargeGrids) {
  const Box b{2048, 2048, 2048};
  EXPECT_EQ(b.size(), 8589934592ll);
  EXPECT_EQ(b.idx(2047, 2047, 2047), b.size() - 1);
}

struct PatternCase {
  Pattern p;
  int ndiag;
  int nlower;
};

class StencilPattern : public ::testing::TestWithParam<PatternCase> {};

TEST_P(StencilPattern, SizesMatchPaperNaming) {
  const auto& pc = GetParam();
  const Stencil st = Stencil::make(pc.p);
  EXPECT_EQ(st.ndiag(), pc.ndiag);
  EXPECT_EQ(static_cast<int>(st.lower().size()), pc.nlower);
  EXPECT_GE(st.center(), 0);
}

// The 3dN names count stencil points; lower counts are the SpTRSV ablation
// patterns of Fig. 7 (3d7 -> 3+1 = 3d4 etc.).
INSTANTIATE_TEST_SUITE_P(AllPatterns, StencilPattern,
                         ::testing::Values(PatternCase{Pattern::P3d7, 7, 3},
                                           PatternCase{Pattern::P3d15, 15, 7},
                                           PatternCase{Pattern::P3d19, 19, 9},
                                           PatternCase{Pattern::P3d27, 27, 13},
                                           PatternCase{Pattern::P3d4, 4, 3},
                                           PatternCase{Pattern::P3d10, 10, 9},
                                           PatternCase{Pattern::P3d14, 14,
                                                       13}));

TEST(Stencil, FullPatternsAreSymmetric) {
  for (Pattern p :
       {Pattern::P3d7, Pattern::P3d15, Pattern::P3d19, Pattern::P3d27}) {
    EXPECT_TRUE(Stencil::make(p).symmetric_pattern()) << to_string(p);
  }
}

TEST(Stencil, TriangularPatternsAreNotSymmetric) {
  for (Pattern p : {Pattern::P3d4, Pattern::P3d10, Pattern::P3d14}) {
    EXPECT_FALSE(Stencil::make(p).symmetric_pattern()) << to_string(p);
  }
}

TEST(Stencil, TriangularPatternsHaveNoUpperEntries) {
  for (Pattern p : {Pattern::P3d4, Pattern::P3d10, Pattern::P3d14}) {
    EXPECT_TRUE(Stencil::make(p).upper().empty()) << to_string(p);
  }
}

TEST(Stencil, FindLocatesOffsets) {
  const Stencil st = Stencil::make(Pattern::P3d7);
  EXPECT_GE(st.find(0, 0, 0), 0);
  EXPECT_GE(st.find(-1, 0, 0), 0);
  EXPECT_GE(st.find(0, 0, 1), 0);
  EXPECT_EQ(st.find(1, 1, 0), -1);  // edge offset not in 3d7
}

TEST(Stencil, LowerUpperPartitionExhaustively) {
  for (Pattern p :
       {Pattern::P3d7, Pattern::P3d15, Pattern::P3d19, Pattern::P3d27}) {
    const Stencil st = Stencil::make(p);
    EXPECT_EQ(static_cast<int>(st.lower().size() + st.upper().size()) + 1,
              st.ndiag());
    // Lower offsets precede the center in sweep order; upper follow it.
    for (int d : st.lower()) {
      EXPECT_TRUE(st.offset(d).before_center());
    }
    for (int d : st.upper()) {
      EXPECT_FALSE(st.offset(d).before_center());
      EXPECT_FALSE(st.offset(d).is_center());
    }
  }
}

TEST(Stencil, AtMostOneSameLineLowerOffset) {
  // The line-buffered SymGS relies on this structural fact.
  for (Pattern p :
       {Pattern::P3d7, Pattern::P3d15, Pattern::P3d19, Pattern::P3d27}) {
    const Stencil st = Stencil::make(p);
    int same_line_lower = 0;
    for (int d : st.lower()) {
      const Offset& o = st.offset(d);
      if (o.dy == 0 && o.dz == 0) {
        ++same_line_lower;
        EXPECT_EQ(o.dx, -1);
      }
    }
    EXPECT_LE(same_line_lower, 1) << to_string(p);
  }
}

}  // namespace
}  // namespace smg
