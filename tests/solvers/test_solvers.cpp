// Krylov solver tests with identity and MG preconditioners.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/richardson.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

template <class KT>
LinOp<KT> op_of(const StructMat<KT>& A) {
  return [&A](std::span<const KT> x, std::span<KT> y) {
    spmv<KT, KT>(A, x, y);
  };
}

/// ||b - A x|| / ||b||.
double true_relres(const StructMat<double>& A, std::span<const double> b,
                   std::span<const double> x) {
  avec<double> r(b.size());
  residual<double, double>(A, b, x, {r.data(), r.size()});
  return nrm2<double>(std::span<const double>{r.data(), r.size()}) /
         nrm2<double>(b);
}

TEST(CG, SolvesPoissonUnpreconditioned) {
  auto p = make_laplace27(Box{10, 10, 10});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-10;
  const auto res = pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, id,
                               opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_LT(true_relres(p.A, {p.b.data(), n}, {x.data(), n}), 1e-9);
}

TEST(CG, HistoryIsMonotoneEnoughAndEndsBelowTol) {
  auto p = make_laplace27(Box{10, 10, 10});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.max_iters = 400;
  const auto res = pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, id,
                               opts);
  ASSERT_GE(res.history.size(), 2u);
  EXPECT_NEAR(res.history.front(), 1.0, 1e-12);
  EXPECT_LT(res.history.back(), opts.rtol);
}

TEST(CG, MGPreconditionedPoissonConvergesInFewIterations) {
  auto p = make_laplace27(Box{17, 17, 17});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 60;
  const auto res =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged);
  // Paper Fig. 8: laplace27 converges in ~11 iterations.
  EXPECT_LE(res.iters, 25);
  EXPECT_LT(true_relres(A, {p.b.data(), n}, {x.data(), n}), 1e-9);
}

TEST(GMRES, SolvesNonsymmetricOilProblem) {
  auto p = make_oil(Box{12, 12, 8});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 200;
  opts.rtol = 1e-8;
  const auto res =
      pgmres<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_LT(true_relres(A, {p.b.data(), n}, {x.data(), n}), 1e-7);
}

TEST(GMRES, RestartStillConverges) {
  auto p = make_laplace27(Box{8, 8, 8});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.restart = 10;  // force several restarts
  opts.max_iters = 500;
  opts.rtol = 1e-8;
  const auto res = pgmres<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n},
                                  id, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(true_relres(p.A, {p.b.data(), n}, {x.data(), n}), 1e-7);
}

TEST(GMRES, ZeroRhsReturnsImmediately) {
  auto p = make_laplace27(Box{6, 6, 6});
  const std::size_t n = p.b.size();
  avec<double> b(n, 0.0), x(n, 0.0);
  IdentityPrecond<double> id;
  const auto res =
      pgmres<double>(op_of(p.A), {b.data(), n}, {x.data(), n}, id);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iters, 0);
}

TEST(Richardson, MGStationarySolverConverges) {
  // Alg. 2 as written in the paper: stationary iteration + MG(FP16).
  auto p = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 80;
  opts.rtol = 1e-9;
  const auto res =
      richardson<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged);
}

TEST(Richardson, BreaksDownWithNaNPreconditioner) {
  // The "none" strategy on an out-of-range matrix: NaN must be detected and
  // reported as breakdown, not an infinite loop.
  auto p = make_laplace27e8(Box{10, 10, 10});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 20;
  const auto res =
      richardson<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
}

TEST(Solvers, Fp32IterativePrecisionWorks) {
  // K32: the weather case uses FP32 iterative precision in Table 3.
  auto p = make_laplace27(Box{10, 10, 10});
  StructMat<float> Af = convert<float>(p.A, Layout::SOA);
  const std::size_t n = p.b.size();
  avec<float> bf(n), x(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    bf[i] = static_cast<float>(p.b[i]);
  }
  IdentityPrecond<float> id;
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-5;
  const auto res = pcg<float>(op_of(Af), {bf.data(), n}, {x.data(), n}, id,
                              opts);
  EXPECT_TRUE(res.converged);
}

TEST(Solvers, PrecondTimeIsSubsetOfSolveTime) {
  auto p = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  const auto res =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M);
  EXPECT_GT(res.precond_seconds, 0.0);
  EXPECT_LE(res.precond_seconds, res.solve_seconds);
}

}  // namespace
}  // namespace smg
