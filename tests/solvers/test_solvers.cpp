// Krylov solver tests with identity and MG preconditioners.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/richardson.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

template <class KT>
LinOp<KT> op_of(const StructMat<KT>& A) {
  return [&A](std::span<const KT> x, std::span<KT> y) {
    spmv<KT, KT>(A, x, y);
  };
}

/// ||b - A x|| / ||b||.
double true_relres(const StructMat<double>& A, std::span<const double> b,
                   std::span<const double> x) {
  avec<double> r(b.size());
  residual<double, double>(A, b, x, {r.data(), r.size()});
  return nrm2<double>(std::span<const double>{r.data(), r.size()}) /
         nrm2<double>(b);
}

TEST(CG, SolvesPoissonUnpreconditioned) {
  auto p = make_laplace27(Box{10, 10, 10});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-10;
  const auto res = pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, id,
                               opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_LT(true_relres(p.A, {p.b.data(), n}, {x.data(), n}), 1e-9);
}

TEST(CG, HistoryIsMonotoneEnoughAndEndsBelowTol) {
  auto p = make_laplace27(Box{10, 10, 10});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.max_iters = 400;
  const auto res = pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, id,
                               opts);
  ASSERT_GE(res.history.size(), 2u);
  EXPECT_NEAR(res.history.front(), 1.0, 1e-12);
  EXPECT_LT(res.history.back(), opts.rtol);
}

TEST(CG, MGPreconditionedPoissonConvergesInFewIterations) {
  auto p = make_laplace27(Box{17, 17, 17});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 60;
  const auto res =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged);
  // Paper Fig. 8: laplace27 converges in ~11 iterations.
  EXPECT_LE(res.iters, 25);
  EXPECT_LT(true_relres(A, {p.b.data(), n}, {x.data(), n}), 1e-9);
}

TEST(GMRES, SolvesNonsymmetricOilProblem) {
  auto p = make_oil(Box{12, 12, 8});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 200;
  opts.rtol = 1e-8;
  const auto res =
      pgmres<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_LT(true_relres(A, {p.b.data(), n}, {x.data(), n}), 1e-7);
}

TEST(GMRES, RestartStillConverges) {
  auto p = make_laplace27(Box{8, 8, 8});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.restart = 10;  // force several restarts
  opts.max_iters = 500;
  opts.rtol = 1e-8;
  const auto res = pgmres<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n},
                                  id, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(true_relres(p.A, {p.b.data(), n}, {x.data(), n}), 1e-7);
}

TEST(GMRES, ZeroRhsReturnsImmediately) {
  auto p = make_laplace27(Box{6, 6, 6});
  const std::size_t n = p.b.size();
  avec<double> b(n, 0.0), x(n, 0.0);
  IdentityPrecond<double> id;
  const auto res =
      pgmres<double>(op_of(p.A), {b.data(), n}, {x.data(), n}, id);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iters, 0);
}

TEST(Richardson, MGStationarySolverConverges) {
  // Alg. 2 as written in the paper: stationary iteration + MG(FP16).
  auto p = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 80;
  opts.rtol = 1e-9;
  const auto res =
      richardson<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.converged);
}

TEST(Richardson, BreaksDownWithNaNPreconditioner) {
  // The "none" strategy on an out-of-range matrix: NaN must be detected and
  // reported as breakdown, not an infinite loop.
  auto p = make_laplace27e8(Box{10, 10, 10});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_none();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 20;
  const auto res =
      richardson<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
}

TEST(Solvers, Fp32IterativePrecisionWorks) {
  // K32: the weather case uses FP32 iterative precision in Table 3.
  auto p = make_laplace27(Box{10, 10, 10});
  StructMat<float> Af = convert<float>(p.A, Layout::SOA);
  const std::size_t n = p.b.size();
  avec<float> bf(n), x(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    bf[i] = static_cast<float>(p.b[i]);
  }
  IdentityPrecond<float> id;
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-5;
  const auto res = pcg<float>(op_of(Af), {bf.data(), n}, {x.data(), n}, id,
                              opts);
  EXPECT_TRUE(res.converged);
}

/// Identity preconditioner that poisons exactly one apply (the `poison`-th)
/// with NaN — a transient stand-in for an FP16 overflow inside a V-cycle.
/// poison == 0 poisons every apply (a persistently broken preconditioner).
template <class KT>
class FlakyIdentity final : public PrecondBase<KT> {
 public:
  explicit FlakyIdentity(int poison) : poison_(poison) {}
  void apply(std::span<const KT> r, std::span<KT> e) override {
    ++count_;
    const bool bad = poison_ == 0 || count_ == poison_;
    for (std::size_t i = 0; i < r.size(); ++i) {
      e[i] = bad ? std::numeric_limits<KT>::quiet_NaN() : r[i];
    }
  }

 private:
  int poison_ = 0;
  int count_ = 0;
};

/// Self-healing identity: poisoned until the solver reports a health event,
/// then repaired once (models the Guarded adapter's repair ladder).
template <class KT>
class SelfHealingIdentity final : public PrecondBase<KT> {
 public:
  void apply(std::span<const KT> r, std::span<KT> e) override {
    for (std::size_t i = 0; i < r.size(); ++i) {
      e[i] = broken_ ? std::numeric_limits<KT>::quiet_NaN() : r[i];
    }
  }
  bool self_healing() const override { return true; }
  bool report_health(HealthEvent) override {
    if (!broken_) {
      return false;  // nothing left to repair
    }
    broken_ = false;
    return true;
  }

 private:
  bool broken_ = true;
};

TEST(GMRES, TransientNaNBreaksDownWithConsistentPrefixSolution) {
  // A NaN in the middle of an Arnoldi cycle: the solve must exit with
  // breakdown status AND an x formed from the finite Krylov prefix, with
  // final_relres recomputed against that x (not a stale/NaN estimate).
  auto p = make_laplace27(Box{8, 8, 8});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  FlakyIdentity<double> flaky(3);  // applies 1-2 fine, 3 poisoned
  SolveOptions opts;
  opts.max_iters = 100;
  const auto res =
      pgmres<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, flaky, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status(), "breakdown");
  ASSERT_TRUE(std::isfinite(res.final_relres));
  // The two finite columns made real progress, and the reported residual
  // matches the returned iterate.
  EXPECT_LT(res.final_relres, 1.0);
  EXPECT_NEAR(res.final_relres, true_relres(p.A, {p.b.data(), n}, {x.data(), n}),
              1e-12);
}

TEST(GMRES, ImmediateNaNBreaksDownWithUntouchedIterate) {
  auto p = make_laplace27(Box{6, 6, 6});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  FlakyIdentity<double> broken(0);  // every apply poisoned
  SolveOptions opts;
  opts.max_iters = 50;
  const auto res = pgmres<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n},
                                  broken, opts);
  EXPECT_TRUE(res.breakdown);
  ASSERT_TRUE(std::isfinite(res.final_relres));
  EXPECT_DOUBLE_EQ(res.final_relres, 1.0);  // no finite column, x untouched
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(x[i], 0.0);
  }
}

TEST(GMRES, ExactHappyBreakdownAboveToleranceIsSurfaced) {
  // The zero operator: H[1,0] == 0 exactly on the first column, and the
  // invariant Krylov subspace cannot reach the tolerance.  The old code
  // restarted from the same residual forever (max-iters); it must surface
  // as a breakdown with a consistent residual instead.
  const std::size_t n = 8;
  const LinOp<double> zero_op = [](std::span<const double>,
                                   std::span<double> y) {
    for (double& v : y) {
      v = 0.0;
    }
  };
  avec<double> b(n, 1.0), x(n, 0.0);
  IdentityPrecond<double> id;
  SolveOptions opts;
  opts.max_iters = 50;
  const auto res =
      pgmres<double>(zero_op, {b.data(), n}, {x.data(), n}, id, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iters, 1);  // detected on the first cycle, no silent spin
  EXPECT_DOUBLE_EQ(res.final_relres, 1.0);
}

TEST(CG, SelfHealingPreconditionerRecoversAndConverges) {
  // The very first preconditioner apply is poisoned; a self-healing M is
  // asked to repair, the recurrence restarts from the last finite iterate,
  // and the solve still converges.
  auto p = make_laplace27(Box{8, 8, 8});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SelfHealingIdentity<double> M;
  SolveOptions opts;
  opts.max_iters = 400;
  const auto res =
      pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, M, opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_EQ(res.heals, 1);
  EXPECT_LT(true_relres(p.A, {p.b.data(), n}, {x.data(), n}), 1e-9);
}

TEST(GMRES, SelfHealingPreconditionerRecoversAndConverges) {
  auto p = make_laplace27(Box{8, 8, 8});
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SelfHealingIdentity<double> M;
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-8;
  const auto res =
      pgmres<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, M, opts);
  EXPECT_TRUE(res.converged) << res.status();
  EXPECT_EQ(res.heals, 1);
  EXPECT_FALSE(res.breakdown);
  EXPECT_LT(true_relres(p.A, {p.b.data(), n}, {x.data(), n}), 1e-7);
}

TEST(Solvers, PrecondTimeIsSubsetOfSolveTime) {
  auto p = make_laplace27(Box{13, 13, 13});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  const auto res =
      pcg<double>(op_of(A), {p.b.data(), n}, {x.data(), n}, *M);
  EXPECT_GT(res.precond_seconds, 0.0);
  EXPECT_LE(res.precond_seconds, res.solve_seconds);
}

}  // namespace
}  // namespace smg
