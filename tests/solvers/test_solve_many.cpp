// Batched many-RHS solver tests.
//
// The load-bearing contract: solve_many() with k copies of one RHS
// reproduces the single-RHS pcg() bitwise in EVERY column — iterate,
// history, iteration count, status — across matrix layouts, storage
// precisions, smoother scheduling, and OpenMP thread counts (with
// deterministic_reductions, across thread counts too).  Plus the
// driver-level behaviors: distinct columns match their own single solves,
// batching/chunking and async change nothing, masks freeze converged
// columns, and the default PrecondBase::apply_many fallback works for
// preconditioners without a panel path.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/mg_precond.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/solve_many.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

LinOp<double> op_of(const StructMat<double>& A) {
  return [&A](std::span<const double> x, std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
}

/// Bitwise comparison of a panel column against a contiguous reference.
::testing::AssertionResult col_bitwise_eq(const MultiVector<double>& X, int c,
                                          std::span<const double> ref) {
  if (static_cast<std::size_t>(X.rows()) != ref.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::int64_t r = 0; r < X.rows(); ++r) {
    const double a = X.at(r, c);
    const double b = ref[static_cast<std::size_t>(r)];
    if (std::memcmp(&a, &b, sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "col " << c << " row " << r << ": " << a << " vs " << b;
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult result_matches(const SolveResult& got,
                                          const SolveResult& ref, int c) {
  if (got.converged != ref.converged || got.breakdown != ref.breakdown ||
      got.iters != ref.iters || got.heals != ref.heals) {
    return ::testing::AssertionFailure()
           << "col " << c << ": status " << got.status() << "/" << got.iters
           << " vs " << ref.status() << "/" << ref.iters;
  }
  if (got.history.size() != ref.history.size()) {
    return ::testing::AssertionFailure()
           << "col " << c << ": history length " << got.history.size()
           << " vs " << ref.history.size();
  }
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    if (std::memcmp(&got.history[i], &ref.history[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "col " << c << ": history[" << i << "] " << got.history[i]
             << " vs " << ref.history[i];
    }
  }
  if (std::memcmp(&got.final_relres, &ref.final_relres, sizeof(double)) !=
      0) {
    return ::testing::AssertionFailure()
           << "col " << c << ": final_relres " << got.final_relres << " vs "
           << ref.final_relres;
  }
  return ::testing::AssertionSuccess();
}

/// Run single-RHS pcg and k-copy solve_many on one hierarchy; assert every
/// column is the single solve, bitwise.
void expect_copies_match_single(MGConfig cfg, int k, const SolveOptions& opts,
                                Box box = Box{10, 10, 10}) {
  auto p = make_laplace27(box);
  const StructMat<double> A = p.A;
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();

  avec<double> x1(n, 0.0);
  const SolveResult single =
      pcg<double>(op_of(A), {p.b.data(), n}, {x1.data(), n}, *M, opts);
  ASSERT_TRUE(single.converged) << single.status();

  MultiVector<double> B(static_cast<std::int64_t>(n), k), X(
      static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SolveManyOptions mopts;
  mopts.base = opts;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(A), B, X, *M, mopts);
  ASSERT_EQ(many.columns.size(), static_cast<std::size_t>(k));
  EXPECT_TRUE(many.all_converged());
  for (int c = 0; c < k; ++c) {
    EXPECT_TRUE(result_matches(many.columns[static_cast<std::size_t>(c)],
                               single, c));
    EXPECT_TRUE(col_bitwise_eq(X, c, {x1.data(), n}));
  }
}

TEST(SolveMany, CopiesReproduceSingleHistoryAcrossStorageAndLayout) {
  SolveOptions opts;
  opts.max_iters = 60;
  for (Layout layout : {Layout::AOS, Layout::SOA, Layout::SOAL}) {
    for (int variant = 0; variant < 4; ++variant) {
      MGConfig cfg;
      switch (variant) {
        case 0:
          cfg = config_full64();
          break;
        case 1:
          cfg = config_k64p32d32();
          break;
        case 2:
          cfg = config_d16_setup_scale();
          break;
        default:
          cfg = config_d16_setup_scale();
          cfg.storage = Prec::BF16;
          break;
      }
      cfg.layout = layout;
      SCOPED_TRACE(testing::Message() << "layout=" << static_cast<int>(layout)
                                      << " variant=" << variant);
      expect_copies_match_single(cfg, 3, opts);
    }
  }
}

TEST(SolveMany, CopiesReproduceSingleAcrossThreadsAndScheduling) {
  // deterministic_reductions + wavefront scheduling: the single solver is
  // thread-count invariant, and the panel must be too — bitwise, at every
  // thread count, k = 5 (a non-power-of-two width exercising padding).
  SolveOptions opts;
  opts.max_iters = 60;
  opts.deterministic_reductions = true;
  const int saved = omp_get_max_threads();
  for (SmootherParallel sp :
       {SmootherParallel::Sequential, SmootherParallel::Wavefront}) {
    for (int nt : {1, 2, 4, 8}) {
      omp_set_num_threads(nt);
      MGConfig cfg = config_d16_setup_scale();
      cfg.smoother_parallel = sp;
      SCOPED_TRACE(testing::Message() << "sp=" << to_string(sp)
                                      << " threads=" << nt);
      expect_copies_match_single(cfg, 5, opts);
    }
  }
  omp_set_num_threads(saved);
}

TEST(SolveMany, DistinctColumnsMatchTheirOwnSingleSolves) {
  // Different RHS per column — different convergence speeds, so the faster
  // columns freeze while the slower ones keep iterating.  Each column must
  // still be bitwise its own single-RHS solve.
  auto p = make_laplace27(Box{10, 10, 10});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  const int k = 3;

  MultiVector<double> B(static_cast<std::int64_t>(n), k), X(
      static_cast<std::int64_t>(n), k);
  std::vector<avec<double>> rhs(k);
  for (int c = 0; c < k; ++c) {
    rhs[static_cast<std::size_t>(c)].resize(n);
    Rng rng(17u * static_cast<unsigned>(c) + 3u);
    for (std::size_t i = 0; i < n; ++i) {
      // Column 0 is the smooth problem RHS, column 1 a rough random
      // vector, column 2 identically zero (converges at iteration 0, so
      // the masked updates must freeze it while the others iterate).
      rhs[static_cast<std::size_t>(c)][i] =
          c == 0 ? p.b[i] : (c == 1 ? rng.uniform(-1.0, 1.0) : 0.0);
    }
    B.insert_col(c, std::span<const double>{
                        rhs[static_cast<std::size_t>(c)].data(), n});
  }

  SolveOptions opts;
  opts.max_iters = 80;
  SolveManyOptions mopts;
  mopts.base = opts;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(A), B, X, *M, mopts);
  ASSERT_EQ(many.columns.size(), static_cast<std::size_t>(k));

  bool iter_counts_differ = false;
  for (int c = 0; c < k; ++c) {
    avec<double> xc(n, 0.0);
    const SolveResult single = pcg<double>(
        op_of(A), {rhs[static_cast<std::size_t>(c)].data(), n},
        {xc.data(), n}, *M, opts);
    EXPECT_TRUE(result_matches(many.columns[static_cast<std::size_t>(c)],
                               single, c));
    EXPECT_TRUE(col_bitwise_eq(X, c, {xc.data(), n}));
    if (single.iters != many.columns[0].iters) {
      iter_counts_differ = true;
    }
  }
  // The point of the masked updates: columns really did freeze at
  // different iterations.
  EXPECT_TRUE(iter_counts_differ);
}

TEST(SolveMany, ChunkingAndEnvBatchDoNotChangeHistories) {
  auto p = make_laplace27(Box{8, 8, 8});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  const int k = 5;

  MultiVector<double> B(static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SolveManyOptions mopts;
  mopts.base.max_iters = 60;

  MultiVector<double> X0(static_cast<std::int64_t>(n), k);
  const SolveManyResult whole =
      solve_many<double>(make_spmv_many_op<double>(A), B, X0, *M, mopts);
  EXPECT_EQ(whole.batches, 1);

  mopts.rhs_batch = 2;
  MultiVector<double> X1(static_cast<std::int64_t>(n), k);
  const SolveManyResult chunked =
      solve_many<double>(make_spmv_many_op<double>(A), B, X1, *M, mopts);
  EXPECT_EQ(chunked.batches, 3);  // 2 + 2 + 1
  ASSERT_EQ(chunked.columns.size(), whole.columns.size());
  for (int c = 0; c < k; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    EXPECT_TRUE(result_matches(chunked.columns[cc], whole.columns[cc], c));
    avec<double> ref(n);
    X0.extract_col(c, {ref.data(), n});
    EXPECT_TRUE(col_bitwise_eq(X1, c, {ref.data(), n}));
  }

  // SMG_RHS_BATCH drives the same chunking when the option is unset.
  setenv("SMG_RHS_BATCH", "3", 1);
  mopts.rhs_batch = 0;
  MultiVector<double> X2(static_cast<std::int64_t>(n), k);
  const SolveManyResult envved =
      solve_many<double>(make_spmv_many_op<double>(A), B, X2, *M, mopts);
  unsetenv("SMG_RHS_BATCH");
  EXPECT_EQ(envved.batches, 2);  // 3 + 2
  for (int c = 0; c < k; ++c) {
    avec<double> ref(n);
    X0.extract_col(c, {ref.data(), n});
    EXPECT_TRUE(col_bitwise_eq(X2, c, {ref.data(), n}));
  }
}

TEST(SolveMany, AsyncMatchesSync) {
  auto p = make_laplace27(Box{8, 8, 8});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  const int k = 4;

  MultiVector<double> B(static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SolveManyOptions mopts;
  mopts.base.max_iters = 60;
  const LinOpMany<double> A_many = make_spmv_many_op<double>(A);

  MultiVector<double> Xs(static_cast<std::int64_t>(n), k);
  const SolveManyResult sync = solve_many<double>(A_many, B, Xs, *M, mopts);

  MultiVector<double> Xa(static_cast<std::int64_t>(n), k);
  std::future<SolveManyResult> fut =
      solve_many_async<double>(A_many, B, Xa, *M, mopts);
  const SolveManyResult async = fut.get();

  ASSERT_EQ(async.columns.size(), sync.columns.size());
  for (int c = 0; c < k; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    EXPECT_TRUE(result_matches(async.columns[cc], sync.columns[cc], c));
    avec<double> ref(n);
    Xs.extract_col(c, {ref.data(), n});
    EXPECT_TRUE(col_bitwise_eq(Xa, c, {ref.data(), n}));
  }
}

TEST(SolveMany, ZeroColumnConvergesImmediatelyOthersProceed) {
  auto p = make_laplace27(Box{8, 8, 8});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();

  MultiVector<double> B(static_cast<std::int64_t>(n), 2), X(
      static_cast<std::int64_t>(n), 2);
  B.insert_col(1, std::span<const double>{p.b.data(), n});  // col 0 stays 0
  SolveManyOptions mopts;
  mopts.base.max_iters = 60;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(A), B, X, *M, mopts);
  EXPECT_TRUE(many.columns[0].converged);
  EXPECT_EQ(many.columns[0].iters, 0);
  for (std::int64_t r = 0; r < X.rows(); ++r) {
    ASSERT_EQ(X.at(r, 0), 0.0);  // frozen column never touched
  }
  EXPECT_TRUE(many.columns[1].converged);
  EXPECT_GT(many.columns[1].iters, 0);
}

TEST(SolveMany, FastReductionsStillConverge) {
  // dot_many/nrm2_many are not bitwise the single reductions, but the
  // solves must still converge to the same tolerance in a comparable
  // iteration count.
  auto p = make_laplace27(Box{10, 10, 10});
  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  MGHierarchy h(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  const int k = 4;

  MultiVector<double> B(static_cast<std::int64_t>(n), k), X(
      static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SolveManyOptions mopts;
  mopts.base.max_iters = 60;
  mopts.fast_reductions = true;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(A), B, X, *M, mopts);
  EXPECT_TRUE(many.all_converged());
  for (const SolveResult& r : many.columns) {
    EXPECT_LT(r.final_relres, mopts.base.rtol);
    EXPECT_LE(r.iters, 25);
  }
}

/// Self-healing identity with no panel override: exercises both the
/// PrecondBase::apply_many per-column fallback and the panel-wide recover
/// path of the batched driver.
class SelfHealingIdentity final : public PrecondBase<double> {
 public:
  void apply(std::span<const double> r, std::span<double> e) override {
    for (std::size_t i = 0; i < r.size(); ++i) {
      e[i] = broken_ ? std::numeric_limits<double>::quiet_NaN() : r[i];
    }
  }
  bool self_healing() const override { return true; }
  bool report_health(HealthEvent) override {
    if (!broken_) {
      return false;
    }
    broken_ = false;
    return true;
  }
  void reset() { broken_ = true; }

 private:
  bool broken_ = true;
};

TEST(SolveMany, PanelRecoverMatchesSingleSolverHealing) {
  // First preconditioner apply poisoned; the panel driver reports one
  // health event, restarts every column from the last finite iterate, and
  // each column reproduces the healed single solve bitwise (the fallback
  // apply_many applies the identity per column, so values match exactly).
  auto p = make_laplace27(Box{8, 8, 8});
  const std::size_t n = p.b.size();
  SolveOptions opts;
  opts.max_iters = 400;

  avec<double> x1(n, 0.0);
  SelfHealingIdentity M1;
  const SolveResult single =
      pcg<double>(op_of(p.A), {p.b.data(), n}, {x1.data(), n}, M1, opts);
  ASSERT_TRUE(single.converged) << single.status();
  ASSERT_EQ(single.heals, 1);

  const int k = 3;
  MultiVector<double> B(static_cast<std::int64_t>(n), k), X(
      static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SelfHealingIdentity M2;
  SolveManyOptions mopts;
  mopts.base = opts;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(p.A), B, X, M2, mopts);
  for (int c = 0; c < k; ++c) {
    EXPECT_TRUE(result_matches(many.columns[static_cast<std::size_t>(c)],
                               single, c));
    EXPECT_TRUE(col_bitwise_eq(X, c, {x1.data(), n}));
  }
}

TEST(SolveMany, PersistentlyBrokenPreconditionerBreaksDownAllColumns) {
  auto p = make_laplace27(Box{6, 6, 6});
  const std::size_t n = p.b.size();
  const int k = 2;
  MultiVector<double> B(static_cast<std::int64_t>(n), k), X(
      static_cast<std::int64_t>(n), k);
  for (int c = 0; c < k; ++c) {
    B.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  // Poisoned on every apply and NOT self-healing: the recurrence goes
  // non-finite and every column must surface breakdown, not spin.
  class Broken final : public PrecondBase<double> {
   public:
    void apply(std::span<const double> r, std::span<double> e) override {
      for (std::size_t i = 0; i < r.size(); ++i) {
        e[i] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  } M;
  SolveManyOptions mopts;
  mopts.base.max_iters = 50;
  const SolveManyResult many =
      solve_many<double>(make_spmv_many_op<double>(p.A), B, X, M, mopts);
  for (const SolveResult& r : many.columns) {
    EXPECT_TRUE(r.breakdown);
    EXPECT_FALSE(r.converged);
  }
}

}  // namespace
}  // namespace smg
