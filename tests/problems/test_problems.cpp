// Problem generator tests: each synthetic problem must reproduce the
// numerical features Table 3 documents for its real-world counterpart.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/scaling.hpp"
#include "fp/half.hpp"
#include "problems/problem.hpp"
#include "util/stats.hpp"

namespace smg {
namespace {

const Box kBox{12, 12, 10};

Problem get(const std::string& name) { return make_problem(name, kBox); }

TEST(Problems, RegistryListsAllEight) {
  const auto names = problem_names();
  EXPECT_EQ(names.size(), 8u);
  for (const auto& n : names) {
    const Problem p = make_problem(n, Box{6, 6, 6});
    EXPECT_EQ(p.name, n);
    EXPECT_EQ(p.b.size(), static_cast<std::size_t>(p.A.nrows()));
  }
}

struct FeatureCase {
  const char* name;
  int pattern_size;
  int bs;
  bool out_of_fp16;
  const char* solver;
};

class ProblemFeatures : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(ProblemFeatures, MatchesTable3) {
  const auto& fc = GetParam();
  const Problem p = get(fc.name);
  EXPECT_EQ(p.A.stencil().ndiag(), fc.pattern_size);
  EXPECT_EQ(p.A.block_size(), fc.bs);
  EXPECT_EQ(p.solver, fc.solver);
  EXPECT_EQ(max_abs_value(p.A) > static_cast<double>(kHalfMax),
            fc.out_of_fp16)
      << "max |a| = " << max_abs_value(p.A);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, ProblemFeatures,
    ::testing::Values(FeatureCase{"laplace27", 27, 1, false, "cg"},
                      FeatureCase{"laplace27e8", 27, 1, true, "cg"},
                      FeatureCase{"rhd", 7, 1, true, "cg"},
                      FeatureCase{"oil", 7, 1, false, "gmres"},
                      FeatureCase{"weather", 19, 1, true, "gmres"},
                      FeatureCase{"rhd3t", 7, 3, true, "cg"},
                      FeatureCase{"oil4c", 7, 4, true, "gmres"},
                      FeatureCase{"solid3d", 15, 3, true, "cg"}));

TEST(Problems, RhdSpansManyDecades) {
  // Fig. 1: rhd values run from far below to far above the FP16 window.
  const Problem p = get("rhd");
  const auto mags = value_magnitudes(p.A);
  const double lo = *std::min_element(mags.begin(), mags.end());
  const double hi = *std::max_element(mags.begin(), mags.end());
  EXPECT_LT(lo, 1e-4);
  EXPECT_GT(hi, 1e6);
  EXPECT_GT(std::log10(hi / lo), 10.0);  // > 10 decades of span
}

TEST(Problems, SymmetryMatchesSolverChoice) {
  for (const auto& name : problem_names()) {
    const Problem p = make_problem(name, Box{7, 6, 5});
    const Box& box = p.A.box();
    const Stencil& st = p.A.stencil();
    const int bs = p.A.block_size();
    double max_asym = 0.0, max_val = 0.0;
    for (int k = 0; k < box.nz; ++k) {
      for (int j = 0; j < box.ny; ++j) {
        for (int i = 0; i < box.nx; ++i) {
          for (int d = 0; d < st.ndiag(); ++d) {
            const Offset& o = st.offset(d);
            if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
              continue;
            }
            const int dt = st.find(-o.dx, -o.dy, -o.dz);
            ASSERT_GE(dt, 0);
            const std::int64_t c1 = box.idx(i, j, k);
            const std::int64_t c2 = box.idx(i + o.dx, j + o.dy, k + o.dz);
            for (int br = 0; br < bs; ++br) {
              for (int bc = 0; bc < bs; ++bc) {
                const double a = p.A.at(c1, d, br, bc);
                const double b = p.A.at(c2, dt, bc, br);
                max_asym = std::max(max_asym, std::abs(a - b));
                max_val = std::max(max_val, std::abs(a));
              }
            }
          }
        }
      }
    }
    if (p.solver == "cg") {
      EXPECT_LE(max_asym, 1e-9 * max_val) << name << " must be symmetric";
    } else {
      EXPECT_GT(max_asym, 1e-6 * max_val) << name << " should be nonsymmetric";
    }
  }
}

TEST(Problems, AllDiagonalsPositive) {
  // M-matrix prerequisite for Theorem 4.1's square roots.
  for (const auto& name : problem_names()) {
    const Problem p = make_problem(name, Box{6, 6, 6});
    const int center = p.A.stencil().center();
    for (std::int64_t cell = 0; cell < p.A.ncells(); ++cell) {
      for (int br = 0; br < p.A.block_size(); ++br) {
        EXPECT_GT(p.A.at(cell, center, br, br), 0.0)
            << name << " cell " << cell << " comp " << br;
      }
    }
  }
}

TEST(Problems, AnisotropyClassesOrdered) {
  // Fig. 5: the High problems must measure clearly above the Low/None ones.
  auto median_aniso = [](const Problem& p) {
    auto s = anisotropy_samples(p.A);
    return percentile(std::vector<double>(s.begin(), s.end()), 50.0);
  };
  const double lap = median_aniso(get("laplace27"));
  const double rhd = median_aniso(get("rhd"));
  const double oil = median_aniso(get("oil"));
  const double weather = median_aniso(get("weather"));
  EXPECT_LT(lap, 0.05);      // isotropic
  EXPECT_GT(oil, 1.5);       // k_z/k_xy = 1e-3 -> ~3 decades
  EXPECT_GT(weather, 1.5);   // aspect-ratio driven
  EXPECT_LT(rhd, oil);       // "Low" vs "High"
}

TEST(Problems, GeneratorsAreDeterministic) {
  const Problem p1 = get("oil4c");
  const Problem p2 = get("oil4c");
  ASSERT_EQ(p1.A.values().size(), p2.A.values().size());
  for (std::size_t i = 0; i < p1.A.values().size(); ++i) {
    EXPECT_EQ(p1.A.values()[i], p2.A.values()[i]);
  }
  for (std::size_t i = 0; i < p1.b.size(); ++i) {
    EXPECT_EQ(p1.b[i], p2.b[i]);
  }
}

TEST(Problems, CondEstimateOrdersLaplaceVsRhd) {
  const double c_lap = estimate_cond(get("laplace27").A, 40);
  const double c_rhd = estimate_cond(get("rhd").A, 40);
  EXPECT_GT(c_lap, 1.0);
  // Table 3: laplace27 ~3e3 vs rhd ~1e8 (our estimates need only the order).
  EXPECT_GT(c_rhd, 10.0 * c_lap);
}

TEST(Problems, ValueMagnitudesSkipZeros) {
  const Problem p = get("laplace27");
  const auto mags = value_magnitudes(p.A);
  for (double v : mags) {
    EXPECT_GT(v, 0.0);
  }
  // 27-point on 12x12x10 minus boundary truncation.
  EXPECT_EQ(mags.size(),
            static_cast<std::size_t>(p.A.nnz_logical()));
}

}  // namespace
}  // namespace smg
