// Property-style parameterized sweeps over random matrices and
// configurations: invariants that must hold for *any* admissible input.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mg_precond.hpp"
#include "core/scaling.hpp"
#include "fp/convert.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "core/smoother.hpp"
#include "solvers/cg.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

/// Random SPD-style diffusion matrix with controllable magnitude span.
/// The magnitude field is spatially *smooth* (random low-frequency modes):
/// iid decade jumps between neighbors would defeat geometric interpolation
/// for any precision, which is an algorithmic limit rather than the FP16
/// property under test (the paper's wide-span problems, rhd in particular,
/// have smooth multi-scale coefficients too).
StructMat<double> random_spd(const Box& box, double decades,
                             std::uint64_t seed) {
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  Rng rng(seed);
  const double px = rng.uniform(0.0, 6.28), kx = rng.uniform(1.0, 2.5);
  const double py = rng.uniform(0.0, 6.28), ky = rng.uniform(1.0, 2.5);
  const double pz = rng.uniform(0.0, 6.28), kz = rng.uniform(1.0, 2.5);
  auto field = [&](std::int64_t cell) {
    const int i = static_cast<int>(cell % box.nx);
    const int j = static_cast<int>((cell / box.nx) % box.ny);
    const int k = static_cast<int>(cell / (box.nx * box.ny));
    const double s = std::sin(kx * i / box.nx * 6.28 + px) +
                     std::sin(ky * j / box.ny * 6.28 + py) +
                     std::sin(kz * k / box.nz * 6.28 + pz);
    return std::pow(10.0, decades * s / 3.0);
  };
  // Symmetric face weights: harmonic mean of the two cell magnitudes times
  // a factor hashed from the unordered cell pair (so a_ij == a_ji exactly).
  const Stencil& st = A.stencil();
  const int center = st.center();
  auto face_factor = [](std::int64_t a, std::int64_t b) {
    std::uint64_t h = static_cast<std::uint64_t>(std::min(a, b)) * 0x9E3779B9ull +
                      static_cast<std::uint64_t>(std::max(a, b));
    return 0.2 + 0.8 * (static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53);
  };
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        double diag = 0.0;
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          const double mi = field(cell);
          double w;
          if (box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
            const double mn = field(nbr);
            w = 2.0 * mi * mn / (mi + mn) * face_factor(cell, nbr);
            A.at(cell, d) = -w;
          } else {
            w = mi;
          }
          diag += w;
        }
        A.at(cell, center) = diag + 1e-3 * field(cell);
      }
    }
  }
  return A;
}

// ---------------------------------------------------------------------------
// Property: Theorem 4.1 over random magnitude spans and safety factors.
// ---------------------------------------------------------------------------
class ScalingProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(ScalingProperty, TruncationAfterScalingNeverOverflows) {
  const auto [decades, safety, seed] = GetParam();
  auto A = random_spd(Box{7, 6, 5}, decades, static_cast<std::uint64_t>(seed));
  const ScaleResult sr = scale_matrix(A, safety, kHalfMax);
  ASSERT_TRUE(sr.applied);
  TruncateReport rep;
  convert<half>(A, Layout::SOA, &rep);
  EXPECT_EQ(rep.overflowed, 0u)
      << "decades=" << decades << " safety=" << safety << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScalingProperty,
    ::testing::Combine(::testing::Values(2.0, 5.0, 9.0, 14.0),
                       ::testing::Values(0.9, 0.5, 0.1),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Property: recover-and-rescale SpMV equals the unscaled operator within
// FP16 truncation error, for random matrices.
// ---------------------------------------------------------------------------
class RescaleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RescaleProperty, ScaledFp16SpmvApproximatesOriginal) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto A = random_spd(Box{8, 7, 6}, 4.0, seed);
  const StructMat<double> orig = A;
  const ScaleResult sr = scale_matrix(A, 0.25, kHalfMax);
  auto Ah = convert<half>(A, Layout::SOA);

  avec<float> q2(sr.q2.size());
  for (std::size_t i = 0; i < q2.size(); ++i) {
    q2[i] = static_cast<float>(sr.q2[i]);
  }

  Rng rng(seed ^ 0xFFFF);
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  avec<float> x(n);
  avec<double> xd(n);
  for (std::size_t i = 0; i < n; ++i) {
    xd[i] = rng.uniform(-1.0, 1.0);
    x[i] = static_cast<float>(xd[i]);
  }
  avec<float> y(n);
  avec<double> yd(n);
  spmv<half, float>(Ah, {x.data(), n}, {y.data(), n}, q2.data());
  spmv<double, double>(orig, {xd.data(), n}, {yd.data(), n});

  // Row scale: |A| row sums bound the truncation error amplification.
  for (std::size_t i = 0; i < n; ++i) {
    double row_scale = 0.0;
    for (int d = 0; d < orig.ndiag(); ++d) {
      row_scale += std::abs(orig.at(static_cast<std::int64_t>(i), d));
    }
    EXPECT_NEAR(y[i], yd[i], 2e-3 * row_scale + 1e-6) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RescaleProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Property: GS sweeps never increase the energy norm error on SPD
// diagonally dominant systems (A-norm contraction), any precision.
// ---------------------------------------------------------------------------
class GsContraction : public ::testing::TestWithParam<int> {};

TEST_P(GsContraction, ForwardBackwardSweepContractsResidual) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto A = random_spd(Box{6, 6, 6}, 1.0, seed);
  const auto invd = compute_invdiag(A);
  Rng rng(seed * 31);
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  avec<double> b(n), u(n, 0.0), r(n);
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  auto rn = [&]() {
    residual<double, double>(A, {b.data(), n}, {u.data(), n}, {r.data(), n});
    double s = 0;
    for (double v : r) {
      s += v * v;
    }
    return std::sqrt(s);
  };
  double prev = rn();
  for (int sweep = 0; sweep < 5; ++sweep) {
    gs_forward<double, double>(A, {b.data(), n}, {u.data(), n},
                               {invd.data(), invd.size()});
    gs_backward<double, double>(A, {b.data(), n}, {u.data(), n},
                                {invd.data(), invd.size()});
    const double cur = rn();
    EXPECT_LT(cur, prev * 1.0000001) << "sweep " << sweep;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GsContraction, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Property: reduced-precision storage does not degrade the preconditioner
// relative to the Full64 hierarchy on the same matrix.  This is the
// paper-relevant invariant (Fig. 6): for mild problems a stationary V-cycle
// iteration must contract; for harsh multi-scale problems (where multigrid
// with geometric interpolation is weak at *any* precision) the FP16 config
// must cost at most a bounded factor of extra CG iterations over Full64.
// ---------------------------------------------------------------------------
struct VcProp {
  int seed;
  double decades;
  Prec storage;
};

class VCyclePrecisionRobustness : public ::testing::TestWithParam<VcProp> {};

TEST_P(VCyclePrecisionRobustness, NoWorseThanFull64) {
  const auto& pr = GetParam();
  auto A1 = random_spd(Box{12, 12, 12}, pr.decades,
                       static_cast<std::uint64_t>(pr.seed));
  auto A2 = A1;
  const StructMat<double> orig = A1;

  MGConfig full = config_full64();
  full.min_coarse_cells = 64;
  MGConfig mix = config_d16_setup_scale();
  mix.storage = pr.storage;
  mix.min_coarse_cells = 64;

  MGHierarchy hf(std::move(A1), full);
  MGHierarchy hm(std::move(A2), mix);
  ASSERT_EQ(hm.total_truncation().overflowed, 0u);
  auto Mf = make_mg_precond<double>(hf);
  auto Mm = make_mg_precond<double>(hm);

  const LinOp<double> op = [&orig](std::span<const double> x,
                                   std::span<double> y) {
    spmv<double, double>(orig, x, y);
  };
  Rng rng(static_cast<std::uint64_t>(pr.seed) * 977);
  const std::size_t n = static_cast<std::size_t>(orig.nrows());
  avec<double> b(n);
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  SolveOptions opts;
  opts.max_iters = 300;
  opts.rtol = 1e-8;
  avec<double> xf(n, 0.0), xm(n, 0.0);
  const auto rf = pcg<double>(op, {b.data(), n}, {xf.data(), n}, *Mf, opts);
  const auto rm = pcg<double>(op, {b.data(), n}, {xm.data(), n}, *Mm, opts);
  ASSERT_TRUE(rf.converged)
      << "seed=" << pr.seed << " decades=" << pr.decades;
  ASSERT_TRUE(rm.converged)
      << "seed=" << pr.seed << " decades=" << pr.decades;
  EXPECT_LE(rm.iters, 2 * rf.iters + 10)
      << "seed=" << pr.seed << " decades=" << pr.decades
      << " storage=" << to_string(pr.storage);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VCyclePrecisionRobustness,
    ::testing::Values(VcProp{1, 0.0, Prec::FP16}, VcProp{2, 2.0, Prec::FP16},
                      VcProp{3, 5.0, Prec::FP16}, VcProp{1, 2.0, Prec::BF16},
                      VcProp{2, 5.0, Prec::BF16}, VcProp{1, 5.0, Prec::FP32},
                      VcProp{4, 8.0, Prec::FP16}));

// ---------------------------------------------------------------------------
// Property: layout is a pure implementation detail — AOS and SOA hierarchies
// produce identical convergence (same arithmetic, different order-of-access).
// ---------------------------------------------------------------------------
TEST(LayoutProperty, AosAndSoaVCyclesAgreeClosely) {
  auto A1 = random_spd(Box{10, 10, 10}, 2.0, 5);
  auto A2 = A1;
  const StructMat<double> orig = A1;
  MGConfig soa = config_d16_setup_scale();
  soa.min_coarse_cells = 64;
  MGConfig aos = soa;
  aos.layout = Layout::AOS;
  MGHierarchy hs(std::move(A1), soa);
  MGHierarchy ha(std::move(A2), aos);
  auto Ms = make_mg_precond<double>(hs);
  auto Ma = make_mg_precond<double>(ha);

  const std::size_t n = static_cast<std::size_t>(orig.nrows());
  avec<double> r(n, 1.0), es(n), ea(n);
  Ms->apply({r.data(), n}, {es.data(), n});
  Ma->apply({r.data(), n}, {ea.data(), n});
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (es[i] - ea[i]) * (es[i] - ea[i]);
    den += es[i] * es[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-4);
}

}  // namespace
}  // namespace smg
