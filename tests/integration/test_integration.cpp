// End-to-end integration tests: full solver workflows per problem and
// precision configuration — the executable form of the paper's headline
// claims at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"

namespace smg {
namespace {

LinOp<double> op_of(const StructMat<double>& A) {
  return [&A](std::span<const double> x, std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
}

SolveResult solve_with(const Problem& p, MGConfig cfg, int max_iters = 300,
                       double rtol = 1e-8) {
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;  // keep p reusable
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = max_iters;
  opts.rtol = rtol;
  if (p.solver == "cg") {
    return pcg<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, *M, opts);
  }
  return pgmres<double>(op_of(p.A), {p.b.data(), n}, {x.data(), n}, *M, opts);
}

class AllProblemsFp16 : public ::testing::TestWithParam<std::string> {};

TEST_P(AllProblemsFp16, SetupThenScaleConverges) {
  const Problem p = make_problem(GetParam(), Box{12, 12, 10});
  const auto res = solve_with(p, config_d16_setup_scale());
  EXPECT_TRUE(res.converged) << GetParam() << ": " << res.status()
                             << " relres=" << res.final_relres;
}

TEST_P(AllProblemsFp16, Full64Converges) {
  const Problem p = make_problem(GetParam(), Box{12, 12, 10});
  const auto res = solve_with(p, config_full64());
  EXPECT_TRUE(res.converged) << GetParam() << ": " << res.status();
}

TEST_P(AllProblemsFp16, Fp16IterCountCloseToFull64) {
  // The paper's central claim: with setup-then-scale, FP16 storage costs few
  // or no extra iterations (Fig. 8: 11->11, 55->65, 20->20, ...).
  const Problem p = make_problem(GetParam(), Box{12, 12, 10});
  const auto full = solve_with(p, config_full64());
  const auto mix = solve_with(p, config_d16_setup_scale());
  ASSERT_TRUE(full.converged);
  ASSERT_TRUE(mix.converged) << GetParam();
  EXPECT_LE(mix.iters, static_cast<int>(std::ceil(full.iters * 1.6)) + 2)
      << GetParam() << ": full=" << full.iters << " mix=" << mix.iters;
}

INSTANTIATE_TEST_SUITE_P(EveryProblem, AllProblemsFp16,
                         ::testing::ValuesIn(problem_names()));

TEST(Integration, NoneStrategyFailsExactlyWhereThePaperSaysIt) {
  // Fig. 6: K64P32D16-none works only for laplace27 (in range); it breaks
  // down on every out-of-range problem.
  for (const auto& name : {"laplace27", "laplace27e8", "rhd"}) {
    const Problem p = make_problem(name, Box{10, 10, 10});
    const auto res = solve_with(p, config_d16_none(), 60);
    if (std::string(name) == "laplace27") {
      EXPECT_TRUE(res.converged) << name;
    } else {
      EXPECT_TRUE(res.breakdown || !res.converged) << name;
    }
  }
}

TEST(Integration, SetupScaleBeatsScaleSetupOnRhd) {
  // Fig. 6(d): scale-then-setup stalls/diverges on rhd while
  // setup-then-scale converges.
  const Problem p = make_problem("rhd", Box{12, 12, 10});
  const auto ours = solve_with(p, config_d16_setup_scale(), 200);
  const auto ablation = solve_with(p, config_d16_scale_setup(), 200);
  EXPECT_TRUE(ours.converged);
  if (ablation.converged) {
    // If it converges at all, it must be slower.
    EXPECT_GT(ablation.iters, ours.iters);
  }
}

TEST(Integration, ShiftLevidRecoversUnderflowLosses) {
  // §4.3: switching coarse levels back to FP32 storage must never hurt, and
  // the resulting solver converges at least as fast.
  const Problem p = make_problem("rhd", Box{12, 12, 10});
  MGConfig without = config_d16_setup_scale();
  MGConfig with = without;
  with.shift_levid = 1;
  const auto r1 = solve_with(p, without, 300);
  const auto r2 = solve_with(p, with, 300);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LE(r2.iters, r1.iters + 2);
}

TEST(Integration, Bf16NeedsNoScalingButCostsAccuracy) {
  // §8: BF16 never overflows (no scaling needed) but converges no faster
  // than FP16 and typically slower.
  const Problem p = make_problem("rhd", Box{12, 12, 10});
  MGConfig bf = config_d16_setup_scale();
  bf.storage = Prec::BF16;
  StructMat<double> A = p.A;
  MGConfig probe = bf;
  probe.min_coarse_cells = 64;
  MGHierarchy h(std::move(A), probe);
  EXPECT_EQ(h.total_truncation().overflowed, 0u);
  for (int l = 0; l < h.nlevels(); ++l) {
    EXPECT_FALSE(h.level(l).scaled);  // BF16 range needs no Q
  }

  const auto r16 = solve_with(p, config_d16_setup_scale(), 400);
  const auto rb16 = solve_with(p, bf, 400);
  ASSERT_TRUE(r16.converged);
  ASSERT_TRUE(rb16.converged);
  EXPECT_GE(rb16.iters, r16.iters);
}

TEST(Integration, PreconditionerDominatesRuntime) {
  // §1: MG preconditioners consume most of the solve - the Amdahl headroom
  // for FP16.  Sanity-check on a mid-size Poisson.
  const Problem p = make_problem("laplace27", Box{20, 20, 20});
  const auto res = solve_with(p, config_full64());
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.precond_seconds / res.solve_seconds, 0.5);
}

TEST(Integration, LargerGridsStillConverge) {
  const Problem p = make_problem("laplace27", Box{28, 28, 28});
  const auto res = solve_with(p, config_d16_setup_scale());
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iters, 30);
}

}  // namespace
}  // namespace smg
