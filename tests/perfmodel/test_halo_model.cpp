// Halo perfmodel: the decomp chain's agglomeration shape, and the contract
// that the engine's measured halo traffic equals the model prediction
// *exactly* (the fig_weak_scaling gate), plus the analytic speedup model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mg_precond.hpp"
#include "obs/telemetry.hpp"
#include "perfmodel/halo.hpp"
#include "problems/problem.hpp"

namespace smg {
namespace {

MGConfig decomp_cfg(std::array<int, 3> nb, SmootherType sm) {
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  cfg.smoother = sm;
  cfg.decomp = nb;
  cfg.decomp_min_box = 32;
  return cfg;
}

TEST(HaloModel, DecompChainIsMonotoneAndCoarsestIsSingleBox) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), decomp_cfg({2, 2, 2}, SmootherType::Jacobi));
  const auto chain = decomp_chain(h, {2, 2, 2}, 32);
  ASSERT_EQ(static_cast<int>(chain.size()), h.nlevels());
  EXPECT_TRUE(chain.front().decomposed());
  EXPECT_FALSE(chain.back().decomposed());
  // Monotone: once a level agglomerates, every deeper one is single-box.
  bool collapsed = false;
  for (const BoxDecomp& d : chain) {
    if (collapsed) {
      EXPECT_FALSE(d.decomposed());
    }
    collapsed = collapsed || !d.decomposed();
  }
}

TEST(HaloModel, StencilGhostIsOneForAllBuiltinPatterns) {
  for (const char* name : {"laplace27", "weather", "rhd3t", "solid3d"}) {
    auto p = make_problem(name, Box{10, 10, 10});
    EXPECT_EQ(stencil_ghost(p.A.stencil()), 1) << name;
  }
}

/// One preconditioner apply with a telemetry sink installed; returns the
/// per-level measured (bytes, exchanges) for comparison against the model.
template <class CT>
void apply_with_telemetry(MGHierarchy& h, obs::Telemetry& t) {
  const obs::InstallGuard guard(&t);
  MGPrecond<CT> M(&h);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  avec<CT> r(n, CT{1}), e(n);
  M.apply({r.data(), n}, {e.data(), n});
}

TEST(HaloModel, MeasuredBytesMatchModelExactlyVCycle) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), decomp_cfg({2, 2, 2}, SmootherType::Jacobi));
  obs::Telemetry t(obs::TelemetryLevel::Counters, h.nlevels());
  apply_with_telemetry<double>(h, t);
  const auto m = model_halo(h, {2, 2, 2}, 32);
  ASSERT_EQ(static_cast<int>(m.size()), h.nlevels());
  for (const HaloLevelModel& lm : m) {
    EXPECT_EQ(t.halo_bytes(lm.level),
              static_cast<std::uint64_t>(lm.bytes_per_apply(sizeof(double))))
        << "level " << lm.level;
    EXPECT_EQ(t.halo_exchanges(lm.level),
              static_cast<std::uint64_t>(lm.exchanges()))
        << "level " << lm.level;
  }
  EXPECT_EQ(t.halo_bytes_total(),
            static_cast<std::uint64_t>(
                model_halo_bytes_per_apply(m, sizeof(double))));
  EXPECT_GT(t.halo_bytes_total(), 0u);
}

TEST(HaloModel, MeasuredBytesMatchModelExactlyWCycleAndSymGS) {
  // W-cycle doubles per-level visits below the finest; SymGS shares the
  // Jacobi exchange schedule (one u-exchange per sweep).
  MGConfig cfg = decomp_cfg({2, 2, 1}, SmootherType::SymGS);
  cfg.cycle = CycleType::W;
  cfg.nu1 = 2;
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), cfg);
  obs::Telemetry t(obs::TelemetryLevel::Counters, h.nlevels());
  apply_with_telemetry<double>(h, t);
  const auto m = model_halo(h, {2, 2, 1}, 32);
  for (const HaloLevelModel& lm : m) {
    EXPECT_EQ(t.halo_bytes(lm.level),
              static_cast<std::uint64_t>(lm.bytes_per_apply(sizeof(double))))
        << "level " << lm.level;
  }
}

TEST(HaloModel, Fp16WireHalvesFp32HaloBytes) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), decomp_cfg({2, 2, 2}, SmootherType::Jacobi));
  const auto m = model_halo(h, {2, 2, 2}, 32);
  EXPECT_EQ(2 * model_halo_bytes_per_apply(m, sizeof(half)),
            model_halo_bytes_per_apply(m, sizeof(float)));
}

TEST(HaloModel, UndecomposedHierarchyHasZeroHaloTraffic) {
  auto p = make_laplace27(Box{17, 17, 17});
  MGHierarchy h(std::move(p.A), decomp_cfg({1, 1, 1}, SmootherType::Jacobi));
  const auto m = model_halo(h, {1, 1, 1}, 32);
  EXPECT_EQ(model_halo_bytes_per_apply(m, sizeof(double)), 0);
  for (const HaloLevelModel& lm : m) {
    EXPECT_FALSE(lm.boxed);
  }
}

TEST(HaloModel, PredictsSpeedupForTwoBoxesOnTwoThreads) {
  // Analytic scaling (this host has one core, so parallel speedup is
  // modeled, not measured): splitting across 2 boxes on 2 workers must beat
  // serial despite the halo cost, and {1,1,1} must degenerate to serial.
  auto p = make_laplace27(Box{33, 33, 33});
  MGHierarchy h(std::move(p.A), decomp_cfg({2, 1, 1}, SmootherType::Jacobi));
  const MachineModel mm;
  const double serial =
      model_decomp_apply_seconds(h, {1, 1, 1}, 512, 1, sizeof(double), mm);
  const double two =
      model_decomp_apply_seconds(h, {2, 1, 1}, 512, 2, sizeof(double), mm);
  EXPECT_GT(serial, 0.0);
  EXPECT_GT(two, 0.0);
  EXPECT_GE(serial / two, 1.2);
  // More boxes than threads cannot help beyond the thread count.
  const double eight_on_two =
      model_decomp_apply_seconds(h, {2, 2, 2}, 64, 2, sizeof(double), mm);
  EXPECT_GE(eight_on_two, two * 0.8);
}

}  // namespace
}  // namespace smg
