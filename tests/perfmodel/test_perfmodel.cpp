// Performance-model tests: Table 2 byte accounting and the strong-scaling
// simulator's qualitative behavior.
#include <gtest/gtest.h>

#include "core/mg_hierarchy.hpp"
#include "perfmodel/bytes.hpp"
#include "perfmodel/scaling_sim.hpp"
#include "perfmodel/stream.hpp"
#include "problems/problem.hpp"

namespace smg {
namespace {

TEST(Bytes, SgDiaBoundsMatchTable2) {
  EXPECT_DOUBLE_EQ(sgdia_bytes_per_nnz(Prec::FP64), 8.0);
  EXPECT_DOUBLE_EQ(sgdia_bytes_per_nnz(Prec::FP32), 4.0);
  EXPECT_DOUBLE_EQ(sgdia_bytes_per_nnz(Prec::FP16), 2.0);
  EXPECT_DOUBLE_EQ(speedup_bound_sgdia(Prec::FP64, Prec::FP32), 2.0);
  EXPECT_DOUBLE_EQ(speedup_bound_sgdia(Prec::FP32, Prec::FP16), 2.0);
  EXPECT_DOUBLE_EQ(speedup_bound_sgdia(Prec::FP64, Prec::FP16), 4.0);
}

TEST(Bytes, CsrBoundsAreBelowTable2Caps) {
  // Table 2 with delta = 15%: int32 CSR fp32->fp16 < 1.3, fp64->fp16 < 2;
  // int64 CSR fp64->fp16 < 1.6.
  const double delta = 0.15;
  EXPECT_LT(speedup_bound_csr(Prec::FP64, Prec::FP32, 4, delta), 1.5);
  // (8 + 4*0.15)/(6 + 4*0.15) = 1.303: the paper's "<1.3" is rounded.
  EXPECT_LT(speedup_bound_csr(Prec::FP32, Prec::FP16, 4, delta), 1.31);
  EXPECT_LT(speedup_bound_csr(Prec::FP64, Prec::FP16, 4, delta), 2.0);
  EXPECT_LT(speedup_bound_csr(Prec::FP64, Prec::FP32, 8, delta), 1.31);
  EXPECT_LT(speedup_bound_csr(Prec::FP32, Prec::FP16, 8, delta), 1.2);
  EXPECT_LT(speedup_bound_csr(Prec::FP64, Prec::FP16, 8, delta), 1.6);
  // And all CSR bounds trail the SG-DIA 4x cap.
  EXPECT_LT(speedup_bound_csr(Prec::FP64, Prec::FP16, 4, delta),
            speedup_bound_sgdia(Prec::FP64, Prec::FP16));
}

TEST(Bytes, PercentMatrixGrowsWithStencilSize) {
  // §3.1: 3d7 -> 0.78, 3d19 -> 0.88 (hmm ~0.90), 3d27 -> ~0.93; the paper
  // quotes 0.78/0.88/0.90 counting patterns 3d7/3d19/3d27.
  const double p7 = percent_matrix(stencil_nnz_per_row(Pattern::P3d7, 1), 1);
  const double p19 = percent_matrix(stencil_nnz_per_row(Pattern::P3d19, 1), 1);
  const double p27 = percent_matrix(stencil_nnz_per_row(Pattern::P3d27, 1), 1);
  EXPECT_NEAR(p7, 7.0 / 9.0, 1e-12);
  EXPECT_GT(p19, p7);
  EXPECT_GT(p27, p19);
  EXPECT_GT(p27, 0.9);
}

TEST(Bytes, FusedDownstrokeSavesExactlyTheResidualWriteAndRead) {
  // DESIGN.md §7: fusing residual→restrict eliminates exactly the residual
  // vector's store (in the residual) and load (in the restriction) — no
  // more, no less.  33^3 fine grid, 17^3 coarse, 27-point stencil.
  const double mf = 33.0 * 33.0 * 33.0;
  const double mc = 17.0 * 17.0 * 17.0;
  const double nnz = mf * stencil_nnz_per_row(Pattern::P3d27, 1);
  for (Prec mat : {Prec::FP64, Prec::FP32, Prec::FP16}) {
    for (Prec vec : {Prec::FP64, Prec::FP32}) {
      for (bool scaled : {false, true}) {
        const double unfused =
            downstroke_bytes(nnz, mf, mc, mat, vec, scaled, false);
        const double fused =
            downstroke_bytes(nnz, mf, mc, mat, vec, scaled, true);
        EXPECT_DOUBLE_EQ(unfused - fused,
                         2.0 * mf * static_cast<double>(bytes_of(vec)))
            << to_string(mat) << "/" << to_string(vec) << " scaled=" << scaled;
        // The convenience wrapper and the parts must agree.
        EXPECT_DOUBLE_EQ(unfused, residual_bytes(nnz, mf, mat, vec, scaled) +
                                      restrict_bytes(mf, mc, vec));
        EXPECT_DOUBLE_EQ(fused, residual_restrict_bytes(nnz, mf, mc, mat,
                                                        vec, scaled));
      }
    }
  }
  // Sanity: the q2 read costs one more vector pass, prolongation is a
  // read-modify-write of the fine iterate.
  EXPECT_DOUBLE_EQ(residual_bytes(nnz, mf, Prec::FP16, Prec::FP32, true) -
                       residual_bytes(nnz, mf, Prec::FP16, Prec::FP32, false),
                   4.0 * mf);
  EXPECT_DOUBLE_EQ(prolong_bytes(mf, mc, Prec::FP32), 4.0 * (2.0 * mf + mc));
}

TEST(Bytes, ManyRhsModelsReduceToSingleAtKOne) {
  // Satellite contract: every *_many model at k = 1 is EXACTLY (bitwise)
  // its single-RHS counterpart — the panel path may not re-derive the
  // baseline accounting.
  const double mf = 33.0 * 33.0 * 33.0;
  const double mc = 17.0 * 17.0 * 17.0;
  const double nnz = mf * stencil_nnz_per_row(Pattern::P3d27, 1);
  for (Prec mat : {Prec::FP64, Prec::FP32, Prec::FP16}) {
    for (Prec vec : {Prec::FP64, Prec::FP32}) {
      for (bool scaled : {false, true}) {
        EXPECT_EQ(spmv_many_bytes(nnz, mf, mat, vec, scaled, 1),
                  spmv_bytes(nnz, mf, mat, vec, scaled));
        EXPECT_EQ(symgs_sweep_many_bytes(nnz, mf, mat, vec, scaled, 1),
                  symgs_sweep_bytes(nnz, mf, mat, vec, scaled));
        EXPECT_EQ(jacobi_sweep_many_bytes(nnz, mf, mat, vec, scaled, 1),
                  jacobi_sweep_bytes(nnz, mf, mat, vec, scaled));
        EXPECT_EQ(residual_many_bytes(nnz, mf, mat, vec, scaled, 1),
                  residual_bytes(nnz, mf, mat, vec, scaled));
        EXPECT_EQ(residual_restrict_many_bytes(nnz, mf, mc, mat, vec, scaled,
                                               1),
                  residual_restrict_bytes(nnz, mf, mc, mat, vec, scaled));
        for (bool fused : {false, true}) {
          EXPECT_EQ(downstroke_many_bytes(nnz, mf, mc, mat, vec, scaled,
                                          fused, 1),
                    downstroke_bytes(nnz, mf, mc, mat, vec, scaled, fused));
        }
      }
    }
  }
  for (Prec vec : {Prec::FP64, Prec::FP32}) {
    EXPECT_EQ(restrict_many_bytes(mf, mc, vec, 1), restrict_bytes(mf, mc, vec));
    EXPECT_EQ(prolong_many_bytes(mf, mc, vec, 1), prolong_bytes(mf, mc, vec));
  }
}

TEST(Bytes, ManyRhsAmortizesMatrixTraffic) {
  // k solves through the panel kernels move strictly fewer bytes than k
  // single-RHS passes — the saving is exactly (k-1) matrix (+q2/inv_diag)
  // streams — and the per-solve traffic decreases monotonically in k,
  // approaching the vector-only floor.
  const double mf = 33.0 * 33.0 * 33.0;
  const double mc = 17.0 * 17.0 * 17.0;
  const double nnz = mf * stencil_nnz_per_row(Pattern::P3d27, 1);
  const double matbytes = nnz * static_cast<double>(bytes_of(Prec::FP16));
  for (int k : {2, 4, 8, 16}) {
    // spmv: saving is exactly (k-1) matrix streams (unscaled case).
    EXPECT_DOUBLE_EQ(
        k * spmv_bytes(nnz, mf, Prec::FP16, Prec::FP64, false) -
            spmv_many_bytes(nnz, mf, Prec::FP16, Prec::FP64, false, k),
        (k - 1) * matbytes);
    // GS sweep: matrix + inv_diag amortize.
    EXPECT_DOUBLE_EQ(
        k * symgs_sweep_bytes(nnz, mf, Prec::FP16, Prec::FP64, false) -
            symgs_sweep_many_bytes(nnz, mf, Prec::FP16, Prec::FP64, false, k),
        (k - 1) * (matbytes + mf * 8.0));
    // Transfers are pure vector streams: no amortization, linear in k.
    EXPECT_DOUBLE_EQ(restrict_many_bytes(mf, mc, Prec::FP32, k),
                     k * restrict_bytes(mf, mc, Prec::FP32));
    EXPECT_DOUBLE_EQ(prolong_many_bytes(mf, mc, Prec::FP32, k),
                     k * prolong_bytes(mf, mc, Prec::FP32));
  }
  // Per-solve downstroke traffic strictly decreases with k.
  double prev = downstroke_bytes(nnz, mf, mc, Prec::FP16, Prec::FP64, true,
                                 true);
  for (int k : {2, 4, 8, 16}) {
    const double per = downstroke_many_bytes(nnz, mf, mc, Prec::FP16,
                                             Prec::FP64, true, true, k) /
                       k;
    EXPECT_LT(per, prev) << k;
    prev = per;
  }
}

TEST(Stream, MeasuresPlausibleBandwidth) {
  const StreamResult r = measure_stream(std::size_t{1} << 20, 3);
  EXPECT_GT(r.triad_gbs, 0.5);    // anything slower than 0.5 GB/s is broken
  EXPECT_LT(r.triad_gbs, 5000.0); // sanity cap
  EXPECT_GT(r.copy_gbs, 0.5);
}

class ScalingSim : public ::testing::Test {
 protected:
  static MGHierarchy make(MGConfig cfg) {
    auto p = make_laplace27(Box{33, 33, 33});
    cfg.min_coarse_cells = 64;
    return MGHierarchy(std::move(p.A), cfg);
  }
};

TEST_F(ScalingSim, MixIsFasterAtEveryScaleButScalesNoBetter) {
  MGHierarchy hf = make(config_full64());
  MGHierarchy hm = make(config_d16_setup_scale());
  const MachineModel m;
  const std::vector<int> cores = {64, 128, 256, 512, 1024};
  const auto pts = simulate_strong_scaling(hf, hm, 11, 11, m,
                                           {cores.data(), cores.size()});
  ASSERT_EQ(pts.size(), cores.size());
  for (const auto& p : pts) {
    EXPECT_LT(p.time_mix, p.time_full) << p.cores;
  }
  // Times decrease with cores (strong scaling works).
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].time_full, pts[i - 1].time_full);
    EXPECT_LT(pts[i].time_mix, pts[i - 1].time_mix);
  }
  // Paper §7.4: mixed precision never scales better than full precision.
  const double eff = relative_efficiency({pts.data(), pts.size()});
  EXPECT_LE(eff, 1.001);
  EXPECT_GT(eff, 0.4);
}

TEST_F(ScalingSim, ExtraIterationsErodeMixAdvantage) {
  MGHierarchy hf = make(config_full64());
  MGHierarchy hm = make(config_d16_setup_scale());
  const MachineModel m;
  const std::vector<int> cores = {64};
  const auto same = simulate_strong_scaling(hf, hm, 10, 10, m,
                                            {cores.data(), cores.size()});
  const auto more = simulate_strong_scaling(hf, hm, 10, 14, m,
                                            {cores.data(), cores.size()});
  EXPECT_GT(more[0].time_mix, same[0].time_mix);
  EXPECT_EQ(more[0].time_full, same[0].time_full);
}

TEST_F(ScalingSim, SpeedupApproachesMemoryBoundAtLargeGrain) {
  // At one core the whole 33^3 grid is a big per-core block: the model's
  // mix/full ratio should land between 1.5x and 4x (matrix is FP16 but
  // vectors and the FP64 Krylov work are untouched).
  MGHierarchy hf = make(config_full64());
  MGHierarchy hm = make(config_d16_setup_scale());
  const MachineModel m;
  const std::vector<int> cores = {1};
  const auto pts = simulate_strong_scaling(hf, hm, 11, 11, m,
                                           {cores.data(), cores.size()});
  const double speedup = pts[0].time_full / pts[0].time_mix;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 4.0);
}

}  // namespace
}  // namespace smg
